// Fraud detection: the paper's second motivating domain. Here the risky
// class is defined by the Quest function-7 disposable-income rule
// (0.67·(salary+commission) − 0.2·loan − 20000 > 0), a linear boundary
// over raw continuous attributes — the hard case for a decision tree,
// exercised with the paper's Figure 8 configuration: no preprocessing
// discretization; instead every node discretizes its continuous
// attributes by clustering (SPEC-style), parallelized inside the hybrid
// formulation. Pessimistic pruning then trims the boundary-chasing
// overgrowth.
package main

import (
	"fmt"
	"log"

	"partree/internal/core"
	"partree/internal/dataset"
	"partree/internal/mp"
	"partree/internal/quest"
	"partree/internal/tree"
)

const (
	records = 30000
	procs   = 16
)

func main() {
	raw, err := quest.Generate(quest.Config{Function: 7, Seed: 99}, records)
	if err != nil {
		log.Fatal(err)
	}
	cut := records * 4 / 5
	train, test := raw.Slice(0, cut), raw.Slice(cut, records)

	// Per-node clustering discretization: 64 micro-bins reduced to 8
	// clusters per node, recomputed at every node from globally reduced
	// statistics.
	opts := core.Options{
		Tree:      tree.Options{Binary: true},
		MicroBins: 64,
		NodeBins:  8,
	}

	world := mp.NewWorld(procs, mp.SP2())
	blocks := train.BlockPartition(procs)
	trees := make([]*tree.Tree, procs)
	world.Run(func(c *mp.Comm) {
		trees[c.Rank()] = core.BuildHybrid(c, blocks[c.Rank()], opts)
	})
	t := trees[0]

	st := t.Stats()
	fmt.Printf("trained on %d accounts, %d modeled processors, %.3fs modeled\n",
		train.Len(), procs, world.MaxClock())
	fmt.Printf("unpruned: %d nodes, depth %d, test accuracy %.4f\n",
		st.Nodes, st.MaxDepth, t.Accuracy(test))

	removed := tree.Prune(t, tree.DefaultPruneZ)
	st = t.Stats()
	fmt.Printf("pruned:   %d nodes (-%d internal), test accuracy %.4f\n",
		st.Nodes, removed, t.Accuracy(test))

	// Confusion counts on the holdout: fraud review queues care about the
	// false-negative rate, not raw accuracy.
	var tp, fp, fn, tn int
	rec := dataset.NewRecord(test.Schema)
	for i := 0; i < test.Len(); i++ {
		test.RowInto(i, &rec)
		pred := t.Classify(&rec)
		switch {
		case pred == quest.GroupA && test.Class[i] == quest.GroupA:
			tp++
		case pred == quest.GroupA:
			fp++
		case test.Class[i] == quest.GroupA:
			fn++
		default:
			tn++
		}
	}
	fmt.Printf("holdout confusion: tp=%d fp=%d fn=%d tn=%d (recall %.3f, precision %.3f)\n",
		tp, fp, fn, tn, float64(tp)/float64(tp+fn), float64(tp)/float64(tp+fp))
}
