package main

import (
	"strings"
	"testing"
)

// TestRunSmoke exercises the whole example end to end on a shrunken
// customer base and machine, and checks the report has all its parts.
func TestRunSmoke(t *testing.T) {
	var sb strings.Builder
	if err := run(2000, 2, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"training on 1500 customers across 2 modeled processors",
		"synchronous",
		"partitioned",
		"hybrid",
		"root decision rule",
		"Group A",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n%s", want, out)
		}
	}
	// Every formulation row must report a positive modeled time and a
	// sane accuracy column (0.xxxx).
	if n := strings.Count(out, "0."); n < 3 {
		t.Errorf("expected at least 3 fractional columns, got %d\n%s", n, out)
	}
}
