// Target marketing: the paper's introduction motivates parallel tree
// induction with retail target marketing — predicting which customers
// belong to the responsive "Group A" from demographic attributes. This
// example trains on the Quest function-2 population (age × salary rule),
// compares all three parallel formulations on a modeled 8-processor
// machine, and reads the top of the tree back as campaign rules.
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"partree/internal/core"
	"partree/internal/dataset"
	"partree/internal/discretize"
	"partree/internal/mp"
	"partree/internal/quest"
	"partree/internal/tree"
)

func main() {
	if err := run(40000, 8, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run is the whole example, parameterized so the smoke test can shrink
// the customer base and machine.
func run(records, procs int, w io.Writer) error {
	raw, err := quest.Generate(quest.Config{Function: 2, Seed: 2024}, records)
	if err != nil {
		return err
	}
	// Hold out 25% of the customer base to estimate campaign precision.
	cut := records * 3 / 4
	train := discretize.UniformPaper(raw.Slice(0, cut), quest.PaperBins(), quest.Ranges())
	test := discretize.UniformPaper(raw.Slice(cut, records), quest.PaperBins(), quest.Ranges())

	opts := core.Options{Tree: tree.Options{Binary: true}}
	builders := []struct {
		name  string
		build func(*mp.Comm, *dataset.Dataset, core.Options) *tree.Tree
	}{
		{"synchronous", core.BuildSync},
		{"partitioned", core.BuildPartitioned},
		{"hybrid", core.BuildHybrid},
	}

	fmt.Fprintf(w, "training on %d customers across %d modeled processors\n\n", train.Len(), procs)
	fmt.Fprintf(w, "%-12s %12s %14s %12s\n", "formulation", "modeled sec", "test accuracy", "tree nodes")
	var finalTree *tree.Tree
	for _, b := range builders {
		world := mp.NewWorld(procs, mp.SP2())
		blocks := train.BlockPartition(procs)
		trees := make([]*tree.Tree, procs)
		world.Run(func(c *mp.Comm) {
			trees[c.Rank()] = b.build(c, blocks[c.Rank()], opts)
		})
		finalTree = trees[0]
		fmt.Fprintf(w, "%-12s %12.3f %14.4f %12d\n",
			b.name, world.MaxClock(), finalTree.Accuracy(test), finalTree.Stats().Nodes)
	}

	// All three formulations grow the identical tree; show its top as the
	// campaign's first segmentation rules.
	fmt.Fprintln(w, "\nroot decision rule (identical across formulations):")
	root := finalTree.Root
	attr := finalTree.Schema.Attrs[root.Attr]
	fmt.Fprintf(w, "  split on %q — Group A share per branch:\n", attr.Name)
	for ci, child := range root.Children {
		if child == nil || child.N == 0 {
			continue
		}
		share := float64(child.Dist[quest.GroupA]) / float64(child.N)
		fmt.Fprintf(w, "    branch %d: %6d customers, %5.1f%% in Group A\n", ci, child.N, 100*share)
	}
	return nil
}
