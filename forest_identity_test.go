// Differential identity tests for the forest subsystem's serving
// contract: a 1-tree forest fused through the flat-forest layout must
// predict bit-identically to its member's plain flat.Model under every
// member builder, and the fused batch walk must vote row-for-row like
// member-by-member aggregation over the per-tree models on a batch
// large enough to cross many vote tiles. These are the acceptance
// gates for the fused serving path: the interleaved layout, the
// level-synchronous step walk and its integer-key encoding must be
// unobservable next to the reference walks.
package partree_test

import (
	"testing"

	"partree/internal/flat"
	"partree/internal/forest"
	"partree/internal/quest"
	"partree/internal/tree"
)

// TestForestSingleTreeIdentityAllBuilders trains a 1-tree bagged forest
// with every member builder the registry knows and checks the fused
// prediction of every row against the member model compiled alone.
func TestForestSingleTreeIdentityAllBuilders(t *testing.T) {
	train, err := quest.Generate(quest.Config{Function: 2, Seed: 31}, 1200)
	if err != nil {
		t.Fatal(err)
	}
	test, err := quest.Generate(quest.Config{Function: 2, Seed: 32}, 3000)
	if err != nil {
		t.Fatal(err)
	}
	for _, builder := range forest.Builders {
		builder := builder
		t.Run(builder, func(t *testing.T) {
			f, err := forest.Train(train, forest.Config{
				Trees:     1,
				Builder:   builder,
				Seed:      7,
				Bootstrap: true,
				Tree:      tree.Options{Binary: true, MaxDepth: 8},
			})
			if err != nil {
				t.Fatal(err)
			}
			m, err := flat.Compile(f.Trees[0])
			if err != nil {
				t.Fatal(err)
			}
			fz, err := forest.Compile(f)
			if err != nil {
				t.Fatal(err)
			}
			if fz.Nodes() != m.Len() {
				t.Fatalf("fused table has %d nodes, member model %d", fz.Nodes(), m.Len())
			}
			fused := make([]int32, test.Len())
			want := make([]int32, test.Len())
			fz.PredictInto(test, fused, 0, test.Len())
			m.PredictInto(test, want, 0, test.Len())
			for r := range fused {
				if fused[r] != want[r] {
					t.Fatalf("row %d: fused=%d flat=%d", r, fused[r], want[r])
				}
			}
		})
	}
}

// TestForestFusedMatchesPerTreeVotesLargeBatch checks the fused walk
// against per-tree vote aggregation row-for-row across a batch that
// spans many vote tiles (including a partial final tile), under both
// vote modes and for a forest whose members differ in depth.
func TestForestFusedMatchesPerTreeVotesLargeBatch(t *testing.T) {
	train, err := quest.Generate(quest.Config{Function: 2, Seed: 41}, 4000)
	if err != nil {
		t.Fatal(err)
	}
	test, err := quest.Generate(quest.Config{Function: 2, Seed: 42, Perturbation: 0.1}, 12007)
	if err != nil {
		t.Fatal(err)
	}
	f, err := forest.Train(train, forest.Config{
		Trees:           24,
		Builder:         "hunt",
		Seed:            9,
		Bootstrap:       true,
		FeatureFraction: 0.8,
		Tree:            tree.Options{Binary: true, MaxDepth: 9},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []forest.VoteMode{forest.Majority, forest.Weighted} {
		f.Vote = mode
		f.Weights = nil
		if mode == forest.Weighted {
			f.Weights = make([]float64, len(f.Trees))
			for i := range f.Weights {
				f.Weights[i] = 0.17 + 0.029*float64(i)
			}
		}
		fz, err := forest.Compile(f)
		if err != nil {
			t.Fatal(err)
		}
		fused := make([]int32, test.Len())
		naive := make([]int32, test.Len())
		fz.PredictInto(test, fused, 0, test.Len())
		fz.PredictNaiveInto(test, naive, 0, test.Len())
		mismatches := 0
		for r := range fused {
			if fused[r] != naive[r] {
				if mismatches < 5 {
					t.Errorf("%v: row %d fused=%d naive=%d", mode, r, fused[r], naive[r])
				}
				mismatches++
			}
		}
		if mismatches > 0 {
			t.Fatalf("%v: %d/%d rows diverge", mode, mismatches, test.Len())
		}
		// Sharded serving splits the batch at arbitrary boundaries; the
		// walk must not depend on tile alignment.
		shard := make([]int32, test.Len())
		for lo := 0; lo < test.Len(); {
			hi := lo + 1000 + lo%773
			if hi > test.Len() {
				hi = test.Len()
			}
			fz.PredictInto(test, shard, lo, hi)
			lo = hi
		}
		for r := range shard {
			if shard[r] != fused[r] {
				t.Fatalf("%v: row %d sharded=%d whole=%d", mode, r, shard[r], fused[r])
			}
		}
	}
}
