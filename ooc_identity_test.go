// Differential identity tests for the out-of-core dataset layer: every
// formulation trained from the chunked on-disk column store must grow a
// tree bit-identical to its in-RAM run on the same rows, and the
// multi-rank formulations must additionally show bit-identical modeled
// cost breakdowns once the (new, separately reported) disk cost class is
// stripped — the acceptance gate of the chunked columnar refactor: the
// storage backend must be unobservable in every historic number.
package partree_test

import (
	"fmt"
	"path/filepath"
	"reflect"
	"testing"

	"partree/internal/core"
	"partree/internal/dataset"
	"partree/internal/mp"
	"partree/internal/scalparc"
	"partree/internal/sliq"
	"partree/internal/sprint"
	"partree/internal/tree"
	"partree/internal/vertical"
)

// oocStoreChunkRows keeps store chunks small so every build crosses many
// chunk boundaries.
const oocStoreChunkRows = 256

// oocBuild is one named way of growing a tree from a chunked table — the
// out-of-core twin of a kernelBuild.
type oocBuild struct {
	name  string
	build func(t *testing.T, tbl dataset.Table) (*tree.Tree, *mp.World)
}

// runRanksTable runs a p-rank modeled world where each rank builds from
// its block section of the shared table.
func runRanksTable(t *testing.T, tbl dataset.Table, p int, f func(c *mp.Comm, local dataset.Table) (*tree.Tree, error)) (*tree.Tree, *mp.World) {
	t.Helper()
	w := mp.NewWorld(p, mp.SP2())
	n := tbl.Len()
	trees := make([]*tree.Tree, p)
	errs := make([]error, p)
	w.Run(func(c *mp.Comm) {
		lo, hi := dataset.BlockBounds(n, p, c.Rank())
		trees[c.Rank()], errs[c.Rank()] = f(c, dataset.SectionOf(tbl, lo, hi))
	})
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	for r := 1; r < p; r++ {
		if diff := tree.Diff(trees[0], trees[r]); diff != "" {
			t.Fatalf("rank %d tree differs from rank 0: %s", r, diff)
		}
	}
	return trees[0], w
}

// oocBuilders enumerates the chunk-fed twin of every formulation in
// kernelBuilders, with identical induction options. The genuinely
// streaming builders (bfs, sync) keep only the slot vector resident; the
// attribute-list builders (sliq, sprint, scalparc) stream their one-time
// presort; the builders whose working set is inherently resident (hunt,
// partitioned, hybrid, vertical) materialize their block through the
// chunk interface with the read volume charged to the disk class.
func oocBuilders(discrete bool) []oocBuild {
	serialOpts := tree.Options{Binary: true}
	coreOpts := core.Options{Tree: tree.Options{Binary: true}, SyncEveryNodes: 8}
	if !discrete {
		coreOpts.MicroBins = 32
		coreOpts.NodeBins = 6
	}
	const p = 3
	return []oocBuild{
		{"hunt", func(t *testing.T, tbl dataset.Table) (*tree.Tree, *mp.World) {
			d, _, err := dataset.Materialize(tbl)
			if err != nil {
				t.Fatalf("materialize: %v", err)
			}
			return tree.BuildHunt(d, serialOpts), nil
		}},
		{"bfs", func(t *testing.T, tbl dataset.Table) (*tree.Tree, *mp.World) {
			to, err := coreOpts.SerialOptionsTable(tbl)
			if err != nil {
				t.Fatalf("options: %v", err)
			}
			tr, err := tree.BuildBFSOOC(tbl, to)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			return tr, nil
		}},
		{"sliq", func(t *testing.T, tbl dataset.Table) (*tree.Tree, *mp.World) {
			tr, err := sliq.BuildTable(tbl, serialOpts)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			return tr, nil
		}},
		{"sprint", func(t *testing.T, tbl dataset.Table) (*tree.Tree, *mp.World) {
			tr, err := sprint.BuildTable(tbl, serialOpts)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			return tr, nil
		}},
		{"sync", func(t *testing.T, tbl dataset.Table) (*tree.Tree, *mp.World) {
			return runRanksTable(t, tbl, p, func(c *mp.Comm, local dataset.Table) (*tree.Tree, error) {
				return core.BuildSyncOOC(c, local, coreOpts)
			})
		}},
		{"partitioned", func(t *testing.T, tbl dataset.Table) (*tree.Tree, *mp.World) {
			return runRanksTable(t, tbl, p, func(c *mp.Comm, local dataset.Table) (*tree.Tree, error) {
				d, err := core.MaterializeCharged(c, local)
				if err != nil {
					return nil, err
				}
				return core.BuildPartitioned(c, d, coreOpts), nil
			})
		}},
		{"hybrid", func(t *testing.T, tbl dataset.Table) (*tree.Tree, *mp.World) {
			return runRanksTable(t, tbl, p, func(c *mp.Comm, local dataset.Table) (*tree.Tree, error) {
				d, err := core.MaterializeCharged(c, local)
				if err != nil {
					return nil, err
				}
				return core.BuildHybrid(c, d, coreOpts), nil
			})
		}},
		{"scalparc", func(t *testing.T, tbl dataset.Table) (*tree.Tree, *mp.World) {
			return runRanksTable(t, tbl, p, func(c *mp.Comm, local dataset.Table) (*tree.Tree, error) {
				res, err := scalparc.BuildTable(c, local, scalparc.Options{Tree: serialOpts, Mode: scalparc.DistributedHash})
				if err != nil {
					return nil, err
				}
				return res.Tree, nil
			})
		}},
		{"vertical", func(t *testing.T, tbl dataset.Table) (*tree.Tree, *mp.World) {
			// Vertical partitioning divides columns, not rows: every rank
			// reads the full table.
			w := mp.NewWorld(p, mp.SP2())
			trees := make([]*tree.Tree, p)
			errs := make([]error, p)
			w.Run(func(c *mp.Comm) {
				d, err := core.MaterializeCharged(c, tbl)
				if err != nil {
					errs[c.Rank()] = err
					return
				}
				trees[c.Rank()] = vertical.Build(c, d, serialOpts)
			})
			for r, err := range errs {
				if err != nil {
					t.Fatalf("rank %d: %v", r, err)
				}
			}
			for r := 1; r < p; r++ {
				if diff := tree.Diff(trees[0], trees[r]); diff != "" {
					t.Fatalf("rank %d tree differs from rank 0: %s", r, diff)
				}
			}
			return trees[0], w
		}},
	}
}

// stripDisk removes the disk cost class from a breakdown: DiskBytes /
// DiskTime are zeroed and cells left with no activity at all are dropped
// (an out-of-core run creates a compute cell for a phase the in-RAM run
// never charges in, holding nothing but disk reads). Both sides of a
// comparison are normalized the same way.
func stripDisk(b mp.Breakdown) mp.Breakdown {
	out := mp.NewBreakdown()
	for c, v := range b.Cells {
		v.DiskBytes, v.DiskTime = 0, 0
		if v == (mp.CellStats{}) {
			continue
		}
		out.Cells[c] = v
	}
	return out
}

// openTestStore writes the dataset into an on-disk column store and opens
// it, so the differential runs read through the real encode/decode path.
func openTestStore(t *testing.T, d *dataset.Dataset, chunkRows int) *dataset.Store {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "train.store")
	if err := dataset.WriteStore(dir, d.Chunked(chunkRows), chunkRows); err != nil {
		t.Fatalf("write store: %v", err)
	}
	st, err := dataset.OpenStore(dir)
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// TestOOCIdentity: for every formulation, the tree grown from the on-disk
// column store is bit-identical to the in-RAM tree on the same rows, and
// the modeled cost breakdown is bit-identical once the disk class is
// stripped. The out-of-core multi-rank runs must actually exercise the
// disk class (modeled DiskBytes > 0).
func TestOOCIdentity(t *testing.T) {
	for _, discrete := range []bool{true, false} {
		d := genKernelData(t, discrete)
		st := openTestStore(t, d, oocStoreChunkRows)
		ram := kernelBuilders(discrete)
		for i, ob := range oocBuilders(discrete) {
			kb := ram[i]
			if kb.name != ob.name {
				t.Fatalf("builder lists out of sync: %q vs %q", kb.name, ob.name)
			}
			t.Run(fmt.Sprintf("discrete=%v/%s", discrete, ob.name), func(t *testing.T) {
				wantTree, wantW := kb.build(t, d)
				gotTree, gotW := ob.build(t, st)
				if diff := tree.Diff(wantTree, gotTree); diff != "" {
					t.Fatalf("out-of-core tree differs from in-RAM tree: %s", diff)
				}
				if (wantW == nil) != (gotW == nil) {
					t.Fatalf("world mismatch: in-RAM %v, out-of-core %v", wantW != nil, gotW != nil)
				}
				if wantW != nil {
					wb, gb := stripDisk(wantW.Breakdown()), stripDisk(gotW.Breakdown())
					if !reflect.DeepEqual(wb, gb) {
						t.Fatalf("modeled breakdown drifted between backends (disk class stripped):\nin-RAM:      %+v\nout-of-core: %+v", wb, gb)
					}
					if tr := gotW.Traffic(); tr.DiskBytes <= 0 {
						t.Fatalf("out-of-core run charged no modeled disk bytes")
					}
					if tr := wantW.Traffic(); tr.DiskBytes != 0 {
						t.Fatalf("in-RAM run charged %d modeled disk bytes", tr.DiskBytes)
					}
				}
			})
		}
		if st.ReadBytes() <= 0 {
			t.Fatalf("store reported no encoded bytes read")
		}
	}
}

// TestOOCChunkBoundaries: tabulation and routing are bit-identical for
// any chunk geometry — sizes that split every row, prime-misalign the
// frontier, match the default, and cover the whole set in one chunk.
func TestOOCChunkBoundaries(t *testing.T) {
	for _, discrete := range []bool{true, false} {
		d := genKernelData(t, discrete)
		coreOpts := core.Options{Tree: tree.Options{Binary: true}, SyncEveryNodes: 8}
		if !discrete {
			coreOpts.MicroBins = 32
			coreOpts.NodeBins = 6
		}
		want := tree.BuildBFS(d, coreOpts.SerialOptions(d))
		for _, chunkRows := range []int{1, 7, 4096, d.Len()} {
			t.Run(fmt.Sprintf("discrete=%v/chunk=%d", discrete, chunkRows), func(t *testing.T) {
				tbl := d.Chunked(chunkRows)
				to, err := coreOpts.SerialOptionsTable(tbl)
				if err != nil {
					t.Fatalf("options: %v", err)
				}
				got, err := tree.BuildBFSOOC(tbl, to)
				if err != nil {
					t.Fatalf("build: %v", err)
				}
				if diff := tree.Diff(want, got); diff != "" {
					t.Fatalf("chunk size %d changed the tree: %s", chunkRows, diff)
				}
			})
		}
	}
}
