// Command dtgen generates Quest/SLIQ synthetic training data (Agrawal et
// al.'s nine-attribute generator, the dataset of the paper's experiments)
// and writes it as CSV.
//
// Usage:
//
//	dtgen -n 100000 -function 2 -seed 1998 -o train.csv [-discretize]
//
// With -discretize the six continuous attributes are pre-binned with the
// paper's equal-interval counts (salary 13, commission 14, age 6, hvalue
// 11, hyears 10, loan 20), producing the all-categorical dataset of the
// Figure 6/7 experiments.
//
// With -attrs N (N ≥ 9) the schema is widened to N attributes: the nine
// paper attributes keep their exact values and still solely determine
// the class, and N−9 synthetic noise attributes are appended (alternating
// continuous and small-cardinality categorical) — the wide substrate of
// the voted-split-selection experiments. Works with both CSV and -ooc.
//
// With -bootstrap the emitted rows are an N-of-N with-replacement
// resample of the generated block, drawn from the same deterministic
// stream the forest trainer uses (-sample-seed, member 0) — so a bagging
// input materialized to CSV matches in-process ensemble training exactly.
//
// With -ooc the output is an on-disk column store directory instead of
// CSV, written row by row with bounded resident memory (one record plus
// one encoding chunk) — the path for training sets far larger than RAM:
//
//	dtgen -n 100000000 -ooc -o train.store [-chunk-rows 8192] [-discretize]
//
// The store holds exactly the rows the CSV path would emit (gated by the
// round-trip tests). -bootstrap is not supported out-of-core (the
// resample index is itself Θ(n) resident).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"partree/internal/dataset"
	"partree/internal/discretize"
	"partree/internal/forest"
	"partree/internal/quest"
)

func main() {
	var (
		n          = flag.Int("n", 100000, "number of records")
		fn         = flag.Int("function", 2, "classification function 1..10")
		seed       = flag.Uint64("seed", 1998, "generator seed")
		attrs      = flag.Int("attrs", 0, "widen the schema to this many attributes (0 = the 9 paper attributes; extras are synthetic noise)")
		out        = flag.String("o", "", "output file (default stdout)")
		disc       = flag.Bool("discretize", false, "apply the paper's uniform discretization")
		blocks     = flag.Int("blocks", 1, "emit only block i of this many (with -block)")
		block      = flag.Int("block", 0, "block index to emit (0-based)")
		bootstrap  = flag.Bool("bootstrap", false, "emit a with-replacement resample of the block (bagging input)")
		sampleSeed = flag.Uint64("sample-seed", 1, "master seed of the -bootstrap draw (forest trainer stream, member 0)")
		ooc        = flag.Bool("ooc", false, "write an on-disk column store directory instead of CSV (bounded RAM)")
		chunkRows  = flag.Int("chunk-rows", dataset.DefaultChunkRows, "rows per chunk of the -ooc store")
	)
	flag.Parse()

	if *block < 0 || *block >= *blocks {
		fmt.Fprintf(os.Stderr, "dtgen: block %d out of range 0..%d\n", *block, *blocks-1)
		os.Exit(2)
	}
	lo := *block * *n / *blocks
	hi := (*block + 1) * *n / *blocks
	cfg := quest.Config{Function: *fn, Seed: *seed, Attrs: *attrs}

	if *ooc {
		if *bootstrap {
			fmt.Fprintln(os.Stderr, "dtgen: -bootstrap is not supported with -ooc (the resample index is Θ(n) resident)")
			os.Exit(2)
		}
		if *out == "" {
			fmt.Fprintln(os.Stderr, "dtgen: -ooc requires -o (store directory)")
			os.Exit(2)
		}
		if err := generateStore(cfg, lo, hi, *out, *chunkRows, *disc); err != nil {
			fmt.Fprintln(os.Stderr, "dtgen:", err)
			os.Exit(1)
		}
		return
	}

	d, err := quest.GenerateBlock(cfg, lo, hi)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dtgen:", err)
		os.Exit(2)
	}
	if *bootstrap {
		d = d.Select(forest.BootstrapIndices(*sampleSeed, 0, d.Len()))
		// Resampled rows duplicate source records; fresh ids keep the
		// emitted block's record ids unique, like any generated block.
		d.AssignRIDs(int64(lo))
	}
	if *disc {
		d = discretize.UniformPaper(d, quest.PaperBins(), quest.Ranges())
	}

	w := bufio.NewWriter(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dtgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	if err := dataset.WriteCSV(w, d); err != nil {
		fmt.Fprintln(os.Stderr, "dtgen:", err)
		os.Exit(1)
	}
	if err := w.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "dtgen:", err)
		os.Exit(1)
	}
}

// recodeSink recodes each generated record through a discretizer before
// handing it to the store writer, keeping the -ooc -discretize path at
// one resident record.
type recodeSink struct {
	rc  *discretize.Recoder
	dst dataset.RowSink
	rec dataset.Record
}

func (s *recodeSink) AppendRow(r dataset.Record) error {
	s.rc.Recode(r, &s.rec)
	return s.dst.AppendRow(s.rec)
}

// generateStore streams rows [lo, hi) of the generator straight into an
// on-disk column store at dir, optionally pre-binned with the paper's
// uniform discretization.
func generateStore(cfg quest.Config, lo, hi int, dir string, chunkRows int, disc bool) error {
	schema := cfg.SchemaOf()
	var rc *discretize.Recoder
	outSchema := schema
	if disc {
		rc = discretize.UniformPaperRecoder(schema, quest.PaperBins(), quest.Ranges())
		outSchema = rc.Schema()
	}
	w, err := dataset.NewStoreWriter(dir, outSchema, chunkRows)
	if err != nil {
		return err
	}
	var sink dataset.RowSink = w
	if rc != nil {
		sink = &recodeSink{rc: rc, dst: w, rec: dataset.NewRecord(outSchema)}
	}
	if err := quest.GenerateTo(cfg, lo, hi, sink); err != nil {
		w.Close()
		return err
	}
	return w.Close()
}
