// Command dtgen generates Quest/SLIQ synthetic training data (Agrawal et
// al.'s nine-attribute generator, the dataset of the paper's experiments)
// and writes it as CSV.
//
// Usage:
//
//	dtgen -n 100000 -function 2 -seed 1998 -o train.csv [-discretize]
//
// With -discretize the six continuous attributes are pre-binned with the
// paper's equal-interval counts (salary 13, commission 14, age 6, hvalue
// 11, hyears 10, loan 20), producing the all-categorical dataset of the
// Figure 6/7 experiments.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"partree/internal/dataset"
	"partree/internal/discretize"
	"partree/internal/quest"
)

func main() {
	var (
		n      = flag.Int("n", 100000, "number of records")
		fn     = flag.Int("function", 2, "classification function 1..10")
		seed   = flag.Uint64("seed", 1998, "generator seed")
		out    = flag.String("o", "", "output file (default stdout)")
		disc   = flag.Bool("discretize", false, "apply the paper's uniform discretization")
		blocks = flag.Int("blocks", 1, "emit only block i of this many (with -block)")
		block  = flag.Int("block", 0, "block index to emit (0-based)")
	)
	flag.Parse()

	if *block < 0 || *block >= *blocks {
		fmt.Fprintf(os.Stderr, "dtgen: block %d out of range 0..%d\n", *block, *blocks-1)
		os.Exit(2)
	}
	lo := *block * *n / *blocks
	hi := (*block + 1) * *n / *blocks
	d, err := quest.GenerateBlock(quest.Config{Function: *fn, Seed: *seed}, lo, hi)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dtgen:", err)
		os.Exit(2)
	}
	if *disc {
		d = discretize.UniformPaper(d, quest.PaperBins(), quest.Ranges())
	}

	w := bufio.NewWriter(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dtgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	if err := dataset.WriteCSV(w, d); err != nil {
		fmt.Fprintln(os.Stderr, "dtgen:", err)
		os.Exit(1)
	}
	if err := w.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "dtgen:", err)
		os.Exit(1)
	}
}
