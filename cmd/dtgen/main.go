// Command dtgen generates Quest/SLIQ synthetic training data (Agrawal et
// al.'s nine-attribute generator, the dataset of the paper's experiments)
// and writes it as CSV.
//
// Usage:
//
//	dtgen -n 100000 -function 2 -seed 1998 -o train.csv [-discretize]
//
// With -discretize the six continuous attributes are pre-binned with the
// paper's equal-interval counts (salary 13, commission 14, age 6, hvalue
// 11, hyears 10, loan 20), producing the all-categorical dataset of the
// Figure 6/7 experiments.
//
// With -bootstrap the emitted rows are an N-of-N with-replacement
// resample of the generated block, drawn from the same deterministic
// stream the forest trainer uses (-sample-seed, member 0) — so a bagging
// input materialized to CSV matches in-process ensemble training exactly.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"partree/internal/dataset"
	"partree/internal/discretize"
	"partree/internal/forest"
	"partree/internal/quest"
)

func main() {
	var (
		n          = flag.Int("n", 100000, "number of records")
		fn         = flag.Int("function", 2, "classification function 1..10")
		seed       = flag.Uint64("seed", 1998, "generator seed")
		out        = flag.String("o", "", "output file (default stdout)")
		disc       = flag.Bool("discretize", false, "apply the paper's uniform discretization")
		blocks     = flag.Int("blocks", 1, "emit only block i of this many (with -block)")
		block      = flag.Int("block", 0, "block index to emit (0-based)")
		bootstrap  = flag.Bool("bootstrap", false, "emit a with-replacement resample of the block (bagging input)")
		sampleSeed = flag.Uint64("sample-seed", 1, "master seed of the -bootstrap draw (forest trainer stream, member 0)")
	)
	flag.Parse()

	if *block < 0 || *block >= *blocks {
		fmt.Fprintf(os.Stderr, "dtgen: block %d out of range 0..%d\n", *block, *blocks-1)
		os.Exit(2)
	}
	lo := *block * *n / *blocks
	hi := (*block + 1) * *n / *blocks
	d, err := quest.GenerateBlock(quest.Config{Function: *fn, Seed: *seed}, lo, hi)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dtgen:", err)
		os.Exit(2)
	}
	if *bootstrap {
		d = d.Select(forest.BootstrapIndices(*sampleSeed, 0, d.Len()))
		// Resampled rows duplicate source records; fresh ids keep the
		// emitted block's record ids unique, like any generated block.
		d.AssignRIDs(int64(lo))
	}
	if *disc {
		d = discretize.UniformPaper(d, quest.PaperBins(), quest.Ranges())
	}

	w := bufio.NewWriter(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dtgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	if err := dataset.WriteCSV(w, d); err != nil {
		fmt.Fprintln(os.Stderr, "dtgen:", err)
		os.Exit(1)
	}
	if err := w.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "dtgen:", err)
		os.Exit(1)
	}
}
