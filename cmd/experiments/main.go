// Command experiments regenerates the paper's evaluation figures and
// tables on the modeled machine and prints them as aligned text series
// matching the paper's axes.
//
// Usage:
//
//	experiments [flags] phases|fig6|fig7|fig8|fig9|iso|tables|vote|all
//
// The phases experiment (also selected by -stats/-trace alone) prints the
// per-phase × per-collective modeled-cost breakdown of every formulation;
// -trace out.jsonl additionally exports the event timelines as JSONL.
//
// Dataset sizes default to laptop-scale fractions of the paper's (0.8M /
// 1.6M records); use -scale to grow them (e.g. -scale 16 reproduces the
// paper's sizes exactly, at a proportional cost in wall-clock time).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"partree/internal/core"
	"partree/internal/criteria"
	"partree/internal/dataset"
	"partree/internal/experiments"
	"partree/internal/kernel"
	"partree/internal/mp"
	"partree/internal/quest"
	"partree/internal/scalparc"
	"partree/internal/tree"
	"partree/internal/vertical"
)

var (
	scale    = flag.Float64("scale", 1.0, "dataset size multiplier (16 = the paper's 0.8M/1.6M records)")
	maxProcs = flag.Int("maxprocs", 16, "largest processor count for fig6")
	seed     = flag.Uint64("seed", 1998, "generator seed")
	function = flag.Int("function", 2, "Quest classification function (paper: 2)")
	stats    = flag.Bool("stats", false, "print the per-phase × per-collective breakdown (runs `phases` when no experiment is named)")
	traceOut = flag.String("trace", "", "write the `phases` event timelines as JSONL to this file")
	reuse    = flag.Bool("reuse", false, "enable sibling-subtraction histogram reuse and sparse reduction encoding in every run")
	topology = flag.String("topology", "", "interconnect model: hypercube|flat|ring|torus|fattree (default hypercube; only priced when -hop-latency > 0)")
	collAlgo = flag.String("coll-algo", "", "collective algorithms: default|auto|rdbl|ring|rhd|red+bcast, or coll=algo pairs like allreduce=ring,bcast=scatter-ag")
	hopLat   = flag.Float64("hop-latency", 0, "per-hop routing latency t_h in seconds (0 keeps the Equation 2 cut-through model)")
	isoMaxP  = flag.Int("iso-maxprocs", 4096, "largest modeled rank count of the isocomm sweep")
	isoOut   = flag.String("iso-out", "BENCH_comm.json", "output path of the isocomm artifact")
	mttrN    = flag.Int("mttr-records", 8000, "training cases of the MTTR sweep")
	mttrOut  = flag.String("mttr-out", "BENCH_recovery.json", "output path of the MTTR artifact")
)

func main() {
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		if *stats || *traceOut != "" {
			args = []string{"phases"}
		} else {
			args = []string{"all"}
		}
	}
	for _, cmd := range args {
		switch cmd {
		case "phases":
			phases()
		case "fig6":
			fig6()
		case "fig7":
			fig7()
		case "fig8":
			fig8()
		case "fig9":
			fig9()
		case "iso":
			iso()
		case "isocomm":
			isocomm()
		case "tables":
			tables()
		case "sampling":
			sampling()
		case "compare":
			compare()
		case "recovery":
			recovery()
		case "mttr":
			mttr()
		case "vote":
			vote()
		case "all":
			tables()
			fig6()
			fig7()
			fig8()
			fig9()
			iso()
			sampling()
			compare()
			recovery()
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q (want phases|fig6|fig7|fig8|fig9|iso|isocomm|tables|sampling|compare|recovery|mttr|vote|all)\n", cmd)
			os.Exit(2)
		}
	}
}

func n(base int) int { return int(float64(base) * *scale) }

func baseSpec() experiments.Spec {
	s := experiments.Spec{Function: *function, Seed: *seed,
		Topology: *topology, Coll: *collAlgo, HopLatency: *hopLat}
	if *reuse {
		s.Options.Tree.Reuse = kernel.ReuseAll()
	}
	return s
}

func procsUpTo(max int) []int {
	var out []int
	for p := 1; p <= max; p *= 2 {
		out = append(out, p)
	}
	return out
}

// phases prints the per-phase × per-collective modeled-cost breakdown of
// all three formulations on a common workload — the observability view
// the figure experiments are interpreted through (which phase pays for
// which collective, and how the split shifts between formulations). With
// -trace, the merged per-rank event timelines are exported as JSONL, one
// object per event, each carrying the formulation under "run".
func phases() {
	records, procs := n(20000), 8
	var f *os.File
	if *traceOut != "" {
		var err error
		if f, err = os.Create(*traceOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
	}
	total := 0
	for _, form := range []experiments.Formulation{experiments.Sync, experiments.Partitioned, experiments.Hybrid} {
		spec := baseSpec()
		spec.Formulation, spec.Records, spec.Procs = form, records, procs
		spec.Trace = f != nil
		res := experiments.Run(spec)
		fmt.Printf("\n== %s: per-phase / per-collective modeled breakdown (%d records, %d processors) ==\n", form, records, procs)
		fmt.Printf("modeled time %.3fs; rank-summed comm %.3fs / comp %.3fs\n",
			res.ModeledSeconds, res.Traffic.CommTime, res.Traffic.CompTime)
		fmt.Print(res.Breakdown.Table())
		if len(res.Encoding) > 0 {
			fmt.Println("\nper-phase reduction encoding (rank-summed):")
			fmt.Print(mp.EncodingTable(res.Encoding))
		}
		if f != nil {
			enc := json.NewEncoder(f)
			for _, e := range res.Events {
				line := struct {
					Run string `json:"run"`
					mp.TraceEvent
				}{Run: string(form), TraceEvent: e}
				if err := enc.Encode(line); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
			}
			total += len(res.Events)
		}
	}
	if f != nil {
		fmt.Printf("\ntrace: %d events written to %s\n", total, *traceOut)
	}
}

func fig6() {
	sizes := []int{n(50000), n(100000)}
	procs := procsUpTo(*maxProcs)
	fmt.Printf("\n== Figure 6: speedup of the three parallel formulations (function %d, uniform discretization) ==\n", *function)
	res := experiments.Fig6(sizes, procs, baseSpec())
	for _, size := range sizes {
		fmt.Printf("\n-- %d training cases --\n", size)
		fmt.Printf("%6s  %12s %12s %12s\n", "procs", "sync", "partitioned", "hybrid")
		for i, p := range procs {
			fmt.Printf("%6d  %12.2f %12.2f %12.2f\n", p,
				res[size][experiments.Sync][i].Speedup,
				res[size][experiments.Partitioned][i].Speedup,
				res[size][experiments.Hybrid][i].Speedup)
		}
	}
}

func fig7() {
	ratios := []float64{0.25, 0.5, 1, 2, 4}
	fmt.Printf("\n== Figure 7: hybrid splitting-criterion verification (runtime vs. trigger ratio) ==\n")
	for _, cfg := range []struct {
		records, procs int
	}{{n(50000), 8}, {n(100000), 16}} {
		fmt.Printf("\n-- %d training cases on %d processors --\n", cfg.records, cfg.procs)
		fmt.Printf("%8s  %14s\n", "ratio", "modeled sec")
		for _, pt := range experiments.Fig7(cfg.records, cfg.procs, ratios, baseSpec()) {
			fmt.Printf("%8.2f  %14.3f\n", pt.Ratio, pt.Seconds)
		}
	}
}

func fig8() {
	sizes := []int{n(16000), n(32000), n(64000)}
	procs := procsUpTo(128)
	fmt.Printf("\n== Figure 8: hybrid speedup, continuous attributes with per-node clustering ==\n")
	res := experiments.Fig8(sizes, procs, baseSpec())
	fmt.Printf("%6s", "procs")
	for _, size := range sizes {
		fmt.Printf("  %10s", fmt.Sprintf("N=%d", size))
	}
	fmt.Println()
	for i, p := range procs {
		fmt.Printf("%6d", p)
		for _, size := range sizes {
			fmt.Printf("  %10.2f", res[size][i].Speedup)
		}
		fmt.Println()
	}
}

func fig9() {
	perProc := n(10000)
	procs := procsUpTo(64)
	fmt.Printf("\n== Figure 9: scaleup (%d examples per processor) ==\n", perProc)
	fmt.Printf("%6s %10s %14s\n", "procs", "records", "modeled sec")
	for _, pt := range experiments.Fig9(perProc, procs, baseSpec()) {
		fmt.Printf("%6d %10d %14.3f\n", pt.P, pt.Records, pt.Seconds)
	}
}

func iso() {
	fmt.Printf("\n== Isoefficiency check (§4.3): efficiency when N grows as P·log2(P) ==\n")
	fmt.Printf("%6s %10s %12s\n", "procs", "records", "efficiency")
	base := n(8000)
	for _, p := range []int{2, 4, 8, 16, 32} {
		log2 := 0
		for q := p; q > 1; q >>= 1 {
			log2++
		}
		records := base * p * log2 / 2
		e := experiments.EfficiencyAt(records, p, baseSpec())
		fmt.Printf("%6d %10d %12.3f\n", p, records, e)
	}
}

// isocomm writes the analytic isoefficiency sweep of the communication
// substrate (internal/experiments/isocomm.go) as JSON — the committed
// BENCH_comm.json artifact — and prints a summary table. -hop-latency
// overrides the default 10 µs t_h; -iso-maxprocs bounds the sweep (the
// CI smoke step regenerates only the smallest configuration).
func isocomm() {
	m, n0, statsElems, attrs := experiments.IsoCommDefaults()
	if *hopLat != 0 {
		m = m.WithHopLatency(*hopLat)
	}
	topos := mp.TopologyNames()
	algos := []mp.Algo{mp.AlgoDefault, mp.AlgoAuto, mp.AlgoRing, mp.AlgoRecHalving}
	art := experiments.IsoCommSweep(*isoMaxP, m, n0, statsElems, attrs, topos, algos)
	data, err := art.MarshalIndent()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := os.WriteFile(*isoOut, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("\n== Isoefficiency of the communication substrate: N = n0·P·log2(P), modeled ranks up to %d ==\n", *isoMaxP)
	fmt.Printf("(t_h = %.0f µs; comm ratio = per-level allreduce / per-level tabulation — the hybrid splits above 1.0)\n\n", m.TH*1e6)
	fmt.Printf("%-10s %-10s %-10s %8s %12s %14s %12s %12s\n",
		"topology", "algo", "resolved", "procs", "records", "allreduce ms", "efficiency", "comm ratio")
	for _, r := range art.Rows {
		if r.Algo != string(mp.AlgoDefault) && r.Algo != string(mp.AlgoAuto) {
			continue // full grid is in the JSON; print the headline selections
		}
		fmt.Printf("%-10s %-10s %-10s %8d %12d %14.3f %12.3f %12.3f\n",
			r.Topology, r.Algo, r.Resolved, r.P, r.Records, r.AllreduceSec*1e3, r.Efficiency, r.CommRatio)
	}
	fmt.Printf("\nartifact: %d rows written to %s\n", len(art.Rows), *isoOut)
}

func sampling() {
	n := n(16000)
	fmt.Printf("\n== Sampling motivation (paper introduction, refs [24, 5-7]): test accuracy vs. training sample ==\n")
	fmt.Printf("%10s %10s %14s\n", "fraction", "trained on", "test accuracy")
	for _, pt := range experiments.Sampling(n, []float64{0.01, 0.02, 0.05, 0.1, 0.25, 0.5, 1.0}, *seed) {
		fmt.Printf("%10.2f %10d %14.4f\n", pt.Fraction, pt.TrainN, pt.TestAcc)
	}
}

// compare pits the related-work parallel classifiers (§2.2) against the
// paper's hybrid on the same modeled machine and workload.
func compare() {
	records := n(20000)
	fmt.Printf("\n== §2.2 comparison on %d records: hybrid vs. parallel SPRINT vs. ScalParC vs. DP-att ==\n", records)
	fmt.Printf("%-16s %6s %14s %14s %14s\n", "algorithm", "procs", "modeled sec", "comm MB", "peak hash")
	raw, err := quest.Generate(quest.Config{Function: *function, Seed: *seed}, records)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	topts := tree.Options{Binary: true, MaxDepth: 10}
	for _, p := range []int{8, 16} {
		// The paper's hybrid (uniform discretization, like Figure 6).
		res := experiments.Run(experiments.Spec{Formulation: experiments.Hybrid, Records: records, Procs: p,
			Options: core.Options{Tree: tree.Options{MaxDepth: 10}}})
		fmt.Printf("%-16s %6d %14.3f %14.2f %14s\n", "hybrid", p, res.ModeledSeconds, float64(res.Traffic.Bytes)/1e6, "-")

		for _, mode := range []scalparc.Mode{scalparc.FullHash, scalparc.DistributedHash} {
			w := mp.NewWorld(p, mp.SP2())
			blocks := raw.BlockPartition(p)
			results := make([]scalparc.Result, p)
			w.Run(func(c *mp.Comm) {
				results[c.Rank()] = scalparc.Build(c, blocks[c.Rank()], scalparc.Options{Tree: topts, Mode: mode})
			})
			peak := 0
			for _, r := range results {
				if r.MaxHashEntries > peak {
					peak = r.MaxHashEntries
				}
			}
			fmt.Printf("%-16s %6d %14.3f %14.2f %14d\n", mode.String(), p, w.MaxClock(), float64(w.Traffic().Bytes)/1e6, peak)
		}

		w := mp.NewWorld(p, mp.SP2())
		w.Run(func(c *mp.Comm) { vertical.Build(c, raw, topts) })
		fmt.Printf("%-16s %6d %14.3f %14.2f %14s\n", "dp-att", p, w.MaxClock(), float64(w.Traffic().Bytes)/1e6, "-")
	}
}

// recovery measures the fault-tolerance overhead of each formulation: the
// modeled time without checkpointing, with checkpointing but no fault,
// and with a seeded mid-build crash plus recovery, alongside the
// checkpoint traffic and the PhaseRecovery breakdown row (the modeled
// cost of regrouping survivors, restoring checkpoints and re-spreading
// the lost rank's records).
func recovery() {
	records, procs := n(20000), 8
	fmt.Printf("\n== Recovery overhead: crash of rank 2 mid-build, %d records on %d processors ==\n", records, procs)
	fmt.Printf("%-12s %10s %10s %10s %8s %8s %10s %12s %6s\n",
		"formulation", "base sec", "ckpt sec", "fault sec", "ckpts", "ckpt MB", "restore MB", "recovery sec", "tree=")
	for _, form := range []experiments.Formulation{experiments.Sync, experiments.Partitioned, experiments.Hybrid} {
		res := experiments.RunRecovery(experiments.RecoverySpec{
			Formulation: form, Records: records, Function: *function, Seed: *seed,
			Procs: procs, CrashRank: 2, CrashOp: 4,
		})
		eq := "no"
		if res.TreeEqual {
			eq = "yes"
		}
		fmt.Printf("%-12s %10.3f %10.3f %10.3f %8d %8.2f %10.2f %12.3f %6s\n",
			form, res.BaselineSeconds, res.CleanSeconds, res.FaultSeconds,
			res.Checkpoints, res.CheckpointMB, res.RestoredMB,
			res.Recovery.CommTime+res.Recovery.CompTime, eq)
	}
}

// mttr sweeps mean-time-to-recovery across recovery modes (in-place,
// process restart, elastic restart at P' < P), checkpoint intervals and
// survivor counts on durable disk-backed stores, writes the committed
// BENCH_recovery.json artifact, and prints the table. Every row's
// recovered tree is diffed against the fault-free baseline.
func mttr() {
	spec := experiments.MTTRSpec{Records: *mttrN, Function: *function, Seed: *seed}
	var art experiments.RecoveryBench
	m := mp.SP2().WithDiskRate(5e-8)
	art.Machine.TS, art.Machine.TW, art.Machine.TC, art.Machine.TOp, art.Machine.TD =
		m.TS, m.TW, m.TC, m.TOp, m.TD
	art.Records, art.Function, art.Seed, art.Procs = *mttrN, *function, *seed, 4

	// The halt op must land while every rank is still in a collective —
	// the partitioned formulation's rank 0 finishes its own subtree in
	// fewer global ops than the lockstep formulations.
	halts := map[experiments.Formulation]int{
		experiments.Sync: 5, experiments.Partitioned: 3, experiments.Hybrid: 5,
	}
	fmt.Printf("\n== MTTR sweep: recovery mode x checkpoint interval x survivors (%d records, 4 processors) ==\n", *mttrN)
	fmt.Printf("%-12s %9s %-9s %4s %10s %10s %9s %10s %10s %6s\n",
		"formulation", "interval", "mode", "P'", "base sec", "ckpt sec", "ovhd %", "MTTR sec", "disk MB", "tree=")
	for _, form := range []experiments.Formulation{experiments.Sync, experiments.Partitioned, experiments.Hybrid} {
		s := spec
		s.Formulation = form
		s.HaltOp = halts[form]
		rows, err := experiments.RunMTTR(s)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for _, r := range rows {
			eq := "no"
			if r.TreeEqual {
				eq = "yes"
			}
			fmt.Printf("%-12s %9d %-9s %4d %10.3f %10.3f %9.2f %10.3f %10.2f %6s\n",
				r.Formulation, r.Interval, r.Mode, r.ResumeProcs,
				r.BaselineSec, r.CleanSec, r.OverheadPct, r.MTTRSec, r.DiskWrittenMB, eq)
		}
		art.Rows = append(art.Rows, rows...)
	}
	data, err := art.MarshalIndent()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := os.WriteFile(*mttrOut, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("\nartifact: %d rows written to %s\n", len(art.Rows), *mttrOut)
}

// vote evaluates voted (top-k) split selection. First the exactness
// boundary differential: on every formulation, discrete and continuous,
// with a non-power-of-two and a power-of-two rank count, a build with
// k ≥ the attribute count must be bit-identical to the exact build —
// same tree, same modeled clock, same per-phase breakdown. Then the
// accuracy-vs-communication sweep over wide schemas: how much reduction
// volume k ∈ {1,2,4,8} saves against exact, and what it costs in holdout
// accuracy, per attribute count and depth budget.
func vote() {
	records := n(8000)
	fmt.Printf("\n== Voted split selection: exactness boundary (k >= attrs is bit-identical to exact) ==\n")
	fmt.Printf("%-12s %6s %6s %6s %12s %10s\n", "formulation", "attrs", "procs", "cont", "modeled sec", "identical")
	okAll := true
	for _, form := range []experiments.Formulation{experiments.Sync, experiments.Partitioned, experiments.Hybrid} {
		for _, cont := range []bool{false, true} {
			for _, p := range []int{3, 8} {
				spec := baseSpec()
				spec.Formulation, spec.Records, spec.Procs, spec.Continuous = form, n(4000), p, cont
				spec.Attrs = 24
				spec.Options.Tree.MaxDepth = 8
				ex, _, same := experiments.VoteIdentity(spec)
				okAll = okAll && same
				fmt.Printf("%-12s %6d %6d %6v %12.3f %10v\n", form, spec.Attrs, p, cont, ex.ModeledSeconds, same)
			}
		}
	}
	if !okAll {
		fmt.Fprintln(os.Stderr, "vote: exactness boundary violated — a k >= attrs build diverged from exact")
		os.Exit(1)
	}

	fmt.Printf("\n== Voted split selection: accuracy vs. communication (sync, %d records, 8 processors) ==\n", records)
	ks := []int{1, 2, 4, 8}
	for _, depth := range []int{6, 12} {
		spec := baseSpec()
		spec.Formulation, spec.Records, spec.Procs, spec.Continuous = experiments.Sync, records, 8, true
		spec.Options.Tree.MaxDepth = depth
		fmt.Printf("\n-- depth limit %d --\n", depth)
		fmt.Printf("%6s %6s %10s %10s %8s %6s %10s %10s\n",
			"attrs", "k", "comm MB", "vs exact", "nodes", "depth", "test acc", "identical")
		for _, pts := range [][]experiments.VotePoint{
			experiments.VoteSweep(spec, []int{64}, ks, 4000),
			experiments.VoteSweep(spec, []int{256}, ks, 4000),
		} {
			exactMB := pts[0].MB
			for _, pt := range pts {
				k := fmt.Sprintf("%d", pt.K)
				if pt.K == 0 {
					k = "exact"
				}
				fmt.Printf("%6d %6s %10.2f %9.1fx %8d %6d %10.4f %10v\n",
					pt.Attrs, k, pt.MB, exactMB/pt.MB, pt.Nodes, pt.Depth, pt.TestAcc, pt.Identical)
			}
		}
	}
}

func tables() {
	w := dataset.Weather()
	s := w.Schema
	fmt.Println("== Table 1: the weather training set ==")
	var sb strings.Builder
	if err := dataset.WriteCSV(&sb, w); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Print(sb.String())

	fmt.Println("\n== Table 2: class distribution of attribute Outlook at the root ==")
	h := criteria.HistFor(w.Cat[0], w.Class, w.AllIndex(), s.Attrs[0].Cardinality(), s.NumClasses())
	fmt.Printf("%-10s %6s %12s\n", "value", "Play", "Don't Play")
	for v, name := range s.Attrs[0].Values {
		fmt.Printf("%-10s %6d %12d\n", name, h.Row(v)[0], h.Row(v)[1])
	}

	fmt.Println("\n== Table 3: class distribution of binary tests on Humidity ==")
	stats := criteria.ContinuousDistribution(w.Cont[2], w.Class, s.NumClasses())
	sort.Slice(stats, func(a, b int) bool { return stats[a].Value < stats[b].Value })
	fmt.Printf("%8s  %6s %6s   %6s %6s\n", "value", "<=P", "<=DP", ">P", ">DP")
	for _, st := range stats {
		fmt.Printf("%8g  %6d %6d   %6d %6d\n", st.Value, st.LE[0], st.LE[1], st.GT[0], st.GT[1])
	}

	fmt.Println("\n== Figure 1: Hunt's method final tree on Table 1 ==")
	t := tree.BuildHunt(w, tree.Options{})
	fmt.Print(t.String())
}
