// Command dtserve serves trained decision-tree and forest models over
// HTTP. It loads tree-JSON model files written by dtree -save (compiled
// into the flat struct-of-arrays form, internal/flat) and forest-JSON
// ensembles written by dtree -forest N -save (compiled into the fused
// interleaved layout, internal/forest), and answers batched prediction
// requests through the parallel engine (internal/predict). Models can be
// hot-swapped under live traffic with PUT /v1/models/NAME;
// SIGINT/SIGTERM drain in-flight requests before exit.
//
// Example:
//
//	dtree -n 50000 -algo sprint -save model.json
//	dtree -n 50000 -algo hunt -forest 100 -save grove.json
//	dtserve -addr :8080 -model quest=model.json -model grove=grove.json &
//	curl -s localhost:8080/v1/predict -X POST -d '{
//	  "model": "quest",
//	  "records": [{"salary": 60000, "commission": 0, "age": 35,
//	               "elevel": "level2", "car": "make3", "zipcode": "zip4",
//	               "hvalue": 150000, "hyears": 12, "loan": 20000}]}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"partree/internal/serve"
)

// preload checksum-verifies one model file against its .sha256 sidecar
// (written by dtree -save; absent sidecars verify trivially) and loads it
// into the registry.
func preload(reg *serve.Registry, name, path string) (*serve.Entry, error) {
	if verified, err := serve.VerifyFileChecksum(path); err != nil {
		return nil, err
	} else if verified {
		fmt.Printf("checksum verified for %s\n", path)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return reg.Load(name, f)
}

// modelFlags collects repeated -model name=path pairs.
type modelFlags []string

func (m *modelFlags) String() string { return strings.Join(*m, ",") }
func (m *modelFlags) Set(v string) error {
	*m = append(*m, v)
	return nil
}

func main() {
	var models modelFlags
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		workers  = flag.Int("workers", 0, "prediction workers (0 = GOMAXPROCS)")
		maxBatch = flag.Int("max-batch", 100000, "largest accepted predict batch")
		timeout  = flag.Duration("timeout", 30*time.Second, "per-request handling timeout")
		drain    = flag.Duration("drain-timeout", 10*time.Second, "shutdown drain window; connections still open when it expires are force-closed")
		maxInfl  = flag.Int("max-inflight", 256, "concurrent /v1/ requests before shedding with 429 (negative disables)")
		brkFails = flag.Int("breaker-threshold", 3, "consecutive model-load failures that open the load circuit breaker")
		brkCool  = flag.Duration("breaker-cooldown", 5*time.Second, "how long an open load breaker rejects swaps before probing")
	)
	flag.Var(&models, "model", "model to preload, as name=path/to/model.json (repeatable)")
	flag.Parse()

	srv := serve.New(serve.Config{
		MaxBatch:         *maxBatch,
		RequestTimeout:   *timeout,
		ShutdownGrace:    *drain,
		Workers:          *workers,
		MaxInflight:      *maxInfl,
		BreakerThreshold: *brkFails,
		BreakerCooldown:  *brkCool,
	})
	for _, spec := range models {
		name, path, ok := strings.Cut(spec, "=")
		if !ok || name == "" || path == "" {
			fmt.Fprintf(os.Stderr, "dtserve: -model wants name=path, got %q\n", spec)
			os.Exit(2)
		}
		// A model that cannot be preloaded — unreadable, failing its
		// checksum sidecar, or unparseable — is skipped with a degraded
		// mark instead of failing boot: the remaining models still serve,
		// /healthz reports "degraded", and a later PUT can repair the name.
		if e, err := preload(srv.Registry(), name, path); err != nil {
			fmt.Fprintf(os.Stderr, "dtserve: model %q degraded, serving without it: %v\n", name, err)
			srv.Registry().SetDegraded(name, err.Error())
		} else {
			fmt.Printf("loaded %s %q from %s (%d trees, %d flat nodes, %d leaves)\n",
				e.Kind(), e.Name, path, e.Trees(), e.Nodes(), e.Leaves())
		}
	}

	if deg := srv.Registry().Degraded(); len(deg) > 0 {
		fmt.Printf("dtserve: %d model(s) degraded at boot; /healthz reports details\n", len(deg))
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Printf("dtserve listening on %s (%d models)\n", *addr, srv.Registry().Len())
	err := srv.ListenAndServe(ctx, *addr)
	srv.Close()
	if errors.Is(err, serve.ErrDrainTimeout) {
		fmt.Printf("dtserve: drain window of %s expired; forced close of remaining connections\n", *drain)
		return
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dtserve:", err)
		os.Exit(1)
	}
	fmt.Println("dtserve: drained and stopped")
}
