// Command dtree trains and evaluates a classification decision tree with
// any of the library's algorithms: the serial builders (hunt = depth-first
// C4.5 style, bfs = breadth-first reference, sprint = pre-sorted attribute
// lists) or the paper's three parallel formulations (sync, partitioned,
// hybrid) on a modeled P-processor machine.
//
// Data comes from a Quest-schema CSV written by dtgen (-data) or is
// generated on the fly (-n/-function/-seed). A holdout fraction measures
// test accuracy. For parallel algorithms the modeled runtime, speedup
// ingredients and message traffic are reported; -stats adds the
// per-phase × per-collective modeled-cost breakdown and -trace exports
// the deterministic per-rank event timeline as JSONL.
//
// With -forest N an ensemble of N trees is trained instead — bagged
// bootstrap samples (disable with -no-bootstrap), optional random
// feature subspaces (-feature-frac), majority or accuracy-weighted
// voting — using -algo as the member builder (any formulation,
// including scalparc and vertical). The ensemble is evaluated through
// the fused flat-forest serving layout and saved with -save as a
// forest-JSON file dtserve can load.
//
// Examples:
//
//	dtree -n 50000 -algo hybrid -procs 16
//	dtgen -n 20000 -o train.csv && dtree -data train.csv -algo sprint -prune
//	dtree -n 50000 -algo hunt -forest 100 -feature-frac 0.7 -save grove.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"partree/internal/core"
	"partree/internal/criteria"
	"partree/internal/dataset"
	"partree/internal/discretize"
	"partree/internal/fault"
	"partree/internal/flat"
	"partree/internal/forest"
	"partree/internal/kernel"
	"partree/internal/mp"
	"partree/internal/predict"
	"partree/internal/quest"
	"partree/internal/serve"
	"partree/internal/sliq"
	"partree/internal/sprint"
	"partree/internal/tree"
)

func main() {
	var (
		data      = flag.String("data", "", "Quest-schema CSV file (default: generate)")
		n         = flag.Int("n", 50000, "records to generate when no -data")
		fn        = flag.Int("function", 2, "Quest classification function")
		seed      = flag.Uint64("seed", 1998, "generator seed")
		attrs     = flag.Int("attrs", 0, "widen the schema to this many attributes (0 = the 9 paper attributes; extras are synthetic noise)")
		algo      = flag.String("algo", "hybrid", "hunt|bfs|sprint|sliq|sync|partitioned|hybrid")
		procs     = flag.Int("procs", 8, "modeled processors (parallel algorithms)")
		crit      = flag.String("criterion", "entropy", "entropy|gini")
		binary    = flag.Bool("binary", true, "binary splits (as in the paper's experiments)")
		maxDepth  = flag.Int("maxdepth", 0, "depth limit (0 = grow to purity)")
		minSplit  = flag.Int("minsplit", 2, "minimum records to split a node")
		prune     = flag.Bool("prune", false, "apply pessimistic pruning after building")
		holdout   = flag.Float64("holdout", 0.2, "fraction of records held out for test accuracy")
		printTree = flag.Bool("print", false, "print the tree")
		saveModel = flag.String("save", "", "write the trained model as JSON to this file")
		loadModel = flag.String("load", "", "skip training; load a JSON model and evaluate it")
		rules     = flag.Int("rules", 0, "print the top-N extracted rules")
		importanc = flag.Bool("importance", false, "print split-based feature importance")
		disc      = flag.Bool("discretize", true, "uniform pre-discretization for parallel algorithms (false = per-node clustering)")
		reuse     = flag.Bool("reuse", false, "enable sibling-subtraction histogram reuse and sparse reduction encoding")
		voteK     = flag.Int("vote-k", 0, "voted split selection: each rank nominates its top-k attributes per election group and only the ≤2k elected candidates reduce full histograms (0 = exact; k ≥ attribute count is also exact)")
		sparse    = flag.Float64("sparse", kernel.DefaultSparseThreshold, "density threshold for sparse reduction encoding (with -reuse; 0 keeps reductions dense)")
		stats     = flag.Bool("stats", false, "print the per-phase × per-collective modeled-cost breakdown (parallel algorithms)")
		traceOut  = flag.String("trace", "", "write the modeled per-rank event timeline as JSONL to this file (parallel algorithms)")
		useFlat   = flag.Bool("flat", false, "evaluate through the compiled flat tree and the batched parallel engine")
		faultSpec = flag.String("fault", "", "inject a fault (parallel algorithms): crash:RANK:OP | delay:RANK:OP:SECONDS | drop:RANK:SEND | halt:OP | torn:RANK:SAVE | bitflip:RANK:SAVE:BIT | random:SEED")
		recoverFT = flag.Bool("recover", false, "checkpoint at level/partition boundaries and recover from injected faults (parallel algorithms)")
		ckptDir   = flag.String("ckpt-dir", "", "durable checkpoint directory (implies -recover); survives the process for -resume")
		resumeFT  = flag.Bool("resume", false, "resume from the last committed checkpoint in -ckpt-dir (possibly with fewer -procs than the crashed run)")

		forestN   = flag.Int("forest", 0, "train a bagged ensemble of this many trees with -algo as the member builder (0 = single tree)")
		vote      = flag.String("vote", "majority", "forest vote aggregation: majority|weighted (weighted uses member train accuracy)")
		featFrac  = flag.Float64("feature-frac", 1, "fraction of attributes each forest member may split on (random subspace)")
		noSample  = flag.Bool("no-bootstrap", false, "train every forest member on the full data instead of a bootstrap sample")
		forestWrk = flag.Int("forest-workers", 0, "concurrent member builds (0 = GOMAXPROCS; the forest is identical for any value)")

		ooc = flag.Bool("ooc", false, "train out-of-core: -data must be a column store directory (dtgen -ooc); implied when -data is one")
	)
	flag.Parse()

	criterion := criteria.Entropy
	switch *crit {
	case "entropy":
	case "gini":
		criterion = criteria.Gini
	default:
		fmt.Fprintf(os.Stderr, "dtree: unknown criterion %q\n", *crit)
		os.Exit(2)
	}
	topts := tree.Options{Criterion: criterion, Binary: *binary, MaxDepth: *maxDepth, MinSplit: *minSplit}
	if *reuse {
		topts.Reuse = kernel.Options{Subtraction: true, SparseThreshold: *sparse}
	}
	if *voteK < 0 {
		fmt.Fprintf(os.Stderr, "dtree: -vote-k must be ≥ 0, got %d\n", *voteK)
		os.Exit(2)
	}
	topts.Vote = kernel.VoteOptions{K: *voteK}

	if *ooc || (*data != "" && dataset.IsStoreDir(*data)) {
		runOOC(oocRun{data: *data, algo: *algo, procs: *procs, topts: topts, holdout: *holdout, stats: *stats})
		return
	}

	full, err := load(*data, *n, *fn, *seed, *attrs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dtree:", err)
		os.Exit(1)
	}
	cut := full.Len() - int(float64(full.Len())**holdout)
	train, test := full.Slice(0, cut), full.Slice(cut, full.Len())

	if *forestN > 0 {
		runForest(forestRun{
			algo:     *algo,
			trees:    *forestN,
			procs:    *procs,
			seed:     *seed,
			vote:     *vote,
			featFrac: *featFrac,
			sample:   !*noSample,
			workers:  *forestWrk,
			disc:     *disc,
			topts:    topts,
			save:     *saveModel,
		}, train, test)
		return
	}

	var t *tree.Tree
	if *loadModel != "" {
		f, err := os.Open(*loadModel)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dtree:", err)
			os.Exit(1)
		}
		t, err = tree.ReadJSON(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "dtree:", err)
			os.Exit(1)
		}
		*algo = "loaded:" + *loadModel
	}
	if t == nil {
		t = trainTree(*algo, train, *procs, topts, *disc, *stats, *traceOut, *faultSpec, *recoverFT, *ckptDir, *resumeFT)
	}

	if *prune {
		removed := tree.Prune(t, tree.DefaultPruneZ)
		fmt.Printf("pruned %d internal nodes\n", removed)
	}
	st := t.Stats()
	fmt.Printf("algorithm      %s\n", *algo)
	fmt.Printf("training cases %d\n", train.Len())
	fmt.Printf("tree           %d nodes, %d leaves, depth %d\n", st.Nodes, st.Leaves, st.MaxDepth)
	eval := accuracyOn
	if *useFlat {
		eval = flatEvaluator(t)
	}
	fmt.Printf("train accuracy %.4f\n", eval(t, train))
	if test.Len() > 0 {
		fmt.Printf("test accuracy  %.4f (holdout %d)\n", eval(t, test), test.Len())
	}
	if *printTree {
		fmt.Print(t.String())
	}
	if *rules > 0 {
		rs := t.Rules()
		if len(rs) > *rules {
			rs = rs[:*rules]
		}
		fmt.Println("top rules:")
		for _, r := range rs {
			fmt.Println("  " + r.String())
		}
	}
	if *importanc {
		fmt.Println("feature importance:")
		for a, v := range t.Importance() {
			if v > 0 {
				fmt.Printf("  %-12s %.3f\n", t.Schema.Attrs[a].Name, v)
			}
		}
	}
	if *saveModel != "" {
		f, err := os.Create(*saveModel)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dtree:", err)
			os.Exit(1)
		}
		if err := tree.WriteJSON(f, t); err != nil {
			fmt.Fprintln(os.Stderr, "dtree:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "dtree:", err)
			os.Exit(1)
		}
		if err := serve.WriteChecksumFile(*saveModel); err != nil {
			fmt.Fprintln(os.Stderr, "dtree:", err)
			os.Exit(1)
		}
		fmt.Printf("model saved to %s (checksum sidecar %s%s)\n", *saveModel, *saveModel, serve.ChecksumSuffix)
	}
}

// forestRun bundles the ensemble-mode parameters.
type forestRun struct {
	algo     string
	trees    int
	procs    int
	seed     uint64
	vote     string
	featFrac float64
	sample   bool
	workers  int
	disc     bool
	topts    tree.Options
	save     string
}

// runForest trains, evaluates and optionally saves a bagged ensemble.
// Any builder can grow members (the multi-rank formulations run their
// modeled worlds per member); evaluation routes through the fused
// flat-forest layout — the serving path.
func runForest(r forestRun, train, test *dataset.Dataset) {
	cfg := forest.Config{
		Trees:           r.trees,
		Builder:         r.algo,
		Procs:           r.procs,
		Seed:            r.seed,
		Bootstrap:       r.sample,
		FeatureFraction: r.featFrac,
		Tree:            r.topts,
		Workers:         r.workers,
	}
	switch r.vote {
	case "majority":
		cfg.Vote = forest.Majority
	case "weighted":
		cfg.Vote = forest.Weighted
	default:
		fmt.Fprintf(os.Stderr, "dtree: unknown -vote %q (want majority|weighted)\n", r.vote)
		os.Exit(2)
	}
	switch r.algo {
	case "sync", "partitioned", "hybrid", "scalparc", "vertical":
		if r.disc {
			train = discretize.UniformPaper(train, quest.PaperBins(), quest.Ranges())
		} else {
			cfg.MicroBins = 32
			cfg.NodeBins = 6
		}
	}

	start := time.Now()
	f, err := forest.Train(train, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dtree:", err)
		os.Exit(1)
	}
	trainSecs := time.Since(start).Seconds()
	if cfg.Vote == forest.Weighted {
		for m, t := range f.Trees {
			f.Weights[m] = t.Accuracy(train)
		}
	}
	fz, err := forest.Compile(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dtree:", err)
		os.Exit(1)
	}

	fmt.Printf("algorithm      forest(%s) x%d, %s vote\n", r.algo, r.trees, f.Vote)
	fmt.Printf("training cases %d (bootstrap %v, feature fraction %g)\n", train.Len(), r.sample, r.featFrac)
	fmt.Printf("trained in     %.2fs wall\n", trainSecs)
	fmt.Printf("fused forest   %d trees, %d nodes, %d leaves\n", fz.Trees(), fz.Nodes(), fz.Leaves())
	fmt.Printf("train accuracy %.4f\n", forestAccuracy(fz, train))
	if test.Len() > 0 {
		fmt.Printf("test accuracy  %.4f (holdout %d)\n", forestAccuracy(fz, test), test.Len())
	}

	if r.save != "" {
		out, err := os.Create(r.save)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dtree:", err)
			os.Exit(1)
		}
		if err := forest.WriteJSON(out, f); err != nil {
			fmt.Fprintln(os.Stderr, "dtree:", err)
			os.Exit(1)
		}
		if err := out.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "dtree:", err)
			os.Exit(1)
		}
		if err := serve.WriteChecksumFile(r.save); err != nil {
			fmt.Fprintln(os.Stderr, "dtree:", err)
			os.Exit(1)
		}
		fmt.Printf("forest saved to %s (checksum sidecar %s%s)\n", r.save, r.save, serve.ChecksumSuffix)
	}
}

// forestAccuracy evaluates through the fused layout, recoding raw rows
// when the forest was trained on pre-discretized data.
func forestAccuracy(fz *forest.Fused, d *dataset.Dataset) float64 {
	if fz.Schema.NumContinuous() != d.Schema.NumContinuous() {
		d = discretize.UniformPaper(d, quest.PaperBins(), quest.Ranges())
	}
	return fz.Accuracy(d)
}

// trainTree dispatches to the selected algorithm.
func trainTree(algo string, train *dataset.Dataset, procs int, topts tree.Options, disc, stats bool, traceOut, faultSpec string, recoverFT bool, ckptDir string, resumeFT bool) *tree.Tree {
	switch algo {
	case "hunt":
		return tree.BuildHunt(train, topts)
	case "sprint":
		return sprint.Build(train, topts)
	case "sliq":
		return sliq.Build(train, topts)
	case "bfs":
		o := core.Options{Tree: topts}
		return tree.BuildBFS(train, o.SerialOptions(train))
	case "sync", "partitioned", "hybrid":
		return runParallel(algo, train, procs, topts, disc, stats, traceOut, faultSpec, recoverFT, ckptDir, resumeFT)
	default:
		fmt.Fprintf(os.Stderr, "dtree: unknown algorithm %q\n", algo)
		os.Exit(2)
		return nil
	}
}

// accuracyOn classifies a raw dataset through the possibly-discretized
// tree: when the tree was trained on pre-binned data its schema differs
// from the raw records, which are then recoded first.
func accuracyOn(t *tree.Tree, d *dataset.Dataset) float64 {
	if t.Schema.NumContinuous() == d.Schema.NumContinuous() {
		return t.Accuracy(d)
	}
	recoded := discretize.UniformPaper(d, quest.PaperBins(), quest.Ranges())
	return t.Accuracy(recoded)
}

// flatEvaluator compiles the tree once and returns an accuracy function
// that routes every dataset through the batched parallel engine (the
// serving path), printing the compiled shape and per-batch throughput.
func flatEvaluator(t *tree.Tree) func(*tree.Tree, *dataset.Dataset) float64 {
	m, err := flat.Compile(t)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dtree:", err)
		os.Exit(1)
	}
	fmt.Printf("flat tree      %d nodes compiled (%d leaves)\n", m.Len(), m.Leaves())
	pool := predict.NewPool(0)
	eng := predict.NewEngine(pool, m)
	return func(_ *tree.Tree, d *dataset.Dataset) float64 {
		if t.Schema.NumContinuous() != d.Schema.NumContinuous() {
			d = discretize.UniformPaper(d, quest.PaperBins(), quest.Ranges())
		}
		out := make([]int32, d.Len())
		before := eng.Stats()
		if err := eng.PredictBatch(d, out); err != nil {
			fmt.Fprintln(os.Stderr, "dtree:", err)
			os.Exit(1)
		}
		after := eng.Stats()
		ok := 0
		for i, c := range out {
			if c == d.Class[i] {
				ok++
			}
		}
		ms := float64(after.WallNS-before.WallNS) / 1e6
		if ms > 0 {
			fmt.Printf("flat batch     %d rows in %.2fms (%.0f rows/s)\n",
				d.Len(), ms, float64(d.Len())/(ms/1e3))
		}
		if d.Len() == 0 {
			return 0
		}
		return float64(ok) / float64(d.Len())
	}
}

func load(path string, n, fn int, seed uint64, attrs int) (*dataset.Dataset, error) {
	if path == "" {
		return quest.Generate(quest.Config{Function: fn, Seed: seed, Attrs: attrs}, n)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return dataset.ReadCSV(f, quest.SchemaN(attrs))
}

// Network-model flags (parallel algorithms only). Package-level so the
// training dispatch doesn't thread three more parameters through.
var (
	topology = flag.String("topology", "", "interconnect model: hypercube|flat|ring|torus|fattree (default hypercube; only priced when -hop-latency > 0)")
	collAlgo = flag.String("coll-algo", "", "collective algorithms: default|auto|rdbl|ring|rhd|red+bcast, or coll=algo pairs like allreduce=ring,bcast=scatter-ag")
	hopLat   = flag.Float64("hop-latency", 0, "per-hop routing latency t_h in seconds (0 = cut-through, all topologies price identically)")
	diskRate = flag.Float64("disk-rate", 0, "modeled per-byte disk transfer time t_d in seconds (out-of-core builds; 0 keeps historic clocks)")
)

// oocRun bundles the out-of-core mode parameters.
type oocRun struct {
	data    string
	algo    string
	procs   int
	topts   tree.Options
	holdout float64
	stats   bool
}

// runOOC trains from an on-disk column store with bounded resident
// memory. bfs, sliq and sprint run serially over the chunked table; sync
// runs its modeled world with every rank streaming its block section of
// the shared store, the encoded reads charged to the disk cost class.
func runOOC(r oocRun) {
	if r.data == "" || !dataset.IsStoreDir(r.data) {
		fmt.Fprintln(os.Stderr, "dtree: -ooc requires -data pointing at a column store directory (write one with dtgen -ooc)")
		os.Exit(2)
	}
	store, err := dataset.OpenStore(r.data)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dtree:", err)
		os.Exit(1)
	}
	defer store.Close()
	cut := store.Len() - int(float64(store.Len())*r.holdout)
	train := dataset.SectionOf(store, 0, cut)
	test := dataset.SectionOf(store, cut, store.Len())

	var t *tree.Tree
	switch r.algo {
	case "bfs":
		o := core.Options{Tree: r.topts}
		to, oerr := o.SerialOptionsTable(train)
		if oerr != nil {
			err = oerr
			break
		}
		for _, a := range store.Schema().Attrs {
			if a.Kind == dataset.Continuous {
				// The in-RAM bfs sorts each node's rows for exact continuous
				// splits; a streaming pass cannot, so it bins per node like
				// the parallel formulations.
				fmt.Fprintln(os.Stderr, "dtree: continuous attributes are discretized per node out-of-core (as in sync); in-RAM bfs uses exact splits")
				break
			}
		}
		t, err = tree.BuildBFSOOC(train, to)
	case "sliq":
		t, err = sliq.BuildTable(train, r.topts)
	case "sprint":
		t, err = sprint.BuildTable(train, r.topts)
	case "sync":
		t, err = runParallelOOC(train, r)
	default:
		fmt.Fprintf(os.Stderr, "dtree: algorithm %q is not supported out-of-core (use bfs|sliq|sprint|sync)\n", r.algo)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dtree:", err)
		os.Exit(1)
	}

	st := t.Stats()
	fmt.Printf("algorithm      %s (out-of-core)\n", r.algo)
	fmt.Printf("training cases %d (store %s, %d chunks of %d rows)\n", train.Len(), r.data, store.NumChunks(), store.ChunkRows())
	fmt.Printf("tree           %d nodes, %d leaves, depth %d\n", st.Nodes, st.Leaves, st.MaxDepth)
	trainAcc, err := t.AccuracyTable(train)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dtree:", err)
		os.Exit(1)
	}
	fmt.Printf("train accuracy %.4f\n", trainAcc)
	if test.Len() > 0 {
		testAcc, err := t.AccuracyTable(test)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dtree:", err)
			os.Exit(1)
		}
		fmt.Printf("test accuracy  %.4f (holdout %d)\n", testAcc, test.Len())
	}
	fmt.Printf("store reads    %.2f MB encoded\n", float64(store.ReadBytes())/1e6)
}

// runParallelOOC runs the synchronous formulation's modeled world over
// the store, every rank streaming its block section.
func runParallelOOC(train dataset.Table, r oocRun) (*tree.Tree, error) {
	o := core.Options{Tree: r.topts}
	m := mp.SP2()
	if *hopLat != 0 {
		m = m.WithHopLatency(*hopLat)
	}
	if *diskRate != 0 {
		m = m.WithDiskRate(*diskRate)
	}
	w := mp.NewWorld(r.procs, m)
	if *topology != "" {
		topo, err := mp.NewTopology(*topology, r.procs)
		if err != nil {
			return nil, err
		}
		w.SetTopology(topo)
	}
	if *collAlgo != "" {
		cfg, err := mp.ParseCollSpec(*collAlgo)
		if err != nil {
			return nil, err
		}
		w.SetCollConfig(cfg)
	}
	n := train.Len()
	trees := make([]*tree.Tree, r.procs)
	errs := make([]error, r.procs)
	w.Run(func(c *mp.Comm) {
		lo, hi := dataset.BlockBounds(n, r.procs, c.Rank())
		trees[c.Rank()], errs[c.Rank()] = core.BuildSyncOOC(c, dataset.SectionOf(train, lo, hi), o)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	tr := w.Traffic()
	fmt.Printf("modeled time   %.3fs on %d processors (SP-2-like machine)\n", w.MaxClock(), r.procs)
	fmt.Printf("traffic        %d messages, %.2f MB, comm %.2fs / comp %.2fs (rank-summed)\n",
		tr.Msgs, float64(tr.Bytes)/1e6, tr.CommTime, tr.CompTime)
	fmt.Printf("disk (modeled) %.2f MB read, %.3fs at t_d=%g (rank-summed)\n",
		float64(tr.DiskBytes)/1e6, tr.DiskTime, *diskRate)
	if r.stats {
		fmt.Println("\nper-phase / per-collective modeled breakdown (rank-summed seconds):")
		fmt.Print(w.Breakdown().Table())
	}
	return trees[0], nil
}

func runParallel(algo string, train *dataset.Dataset, procs int, topts tree.Options, disc, stats bool, traceOut, faultSpec string, recoverFT bool, ckptDir string, resumeFT bool) *tree.Tree {
	if disc {
		train = discretize.UniformPaper(train, quest.PaperBins(), quest.Ranges())
	}
	o := core.Options{Tree: topts}
	var st fault.Store
	var dst *fault.DiskStore
	switch {
	case ckptDir != "":
		var err error
		dst, err = fault.OpenDiskStore(ckptDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dtree:", err)
			os.Exit(1)
		}
		defer dst.Close()
		st = dst
		o.FT = &core.FTOptions{Store: st, Resume: resumeFT}
	case recoverFT:
		st = fault.NewStore()
		o.FT = &core.FTOptions{Store: st}
	case resumeFT:
		fmt.Fprintln(os.Stderr, "dtree: -resume needs -ckpt-dir (the checkpoints of the crashed run)")
		os.Exit(2)
	}
	build := map[string]func(*mp.Comm, *dataset.Dataset, core.Options) *tree.Tree{
		"sync":        core.BuildSync,
		"partitioned": core.BuildPartitioned,
		"hybrid":      core.BuildHybrid,
	}[algo]
	m := mp.SP2()
	if *hopLat != 0 {
		m = m.WithHopLatency(*hopLat)
	}
	w := mp.NewWorld(procs, m)
	if *topology != "" {
		topo, err := mp.NewTopology(*topology, procs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dtree:", err)
			os.Exit(2)
		}
		w.SetTopology(topo)
	}
	if *collAlgo != "" {
		cfg, err := mp.ParseCollSpec(*collAlgo)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dtree:", err)
			os.Exit(2)
		}
		w.SetCollConfig(cfg)
	}
	if traceOut != "" {
		w.EnableTrace()
	}
	if faultSpec != "" {
		plan, needsTimeout, err := parseFault(faultSpec, procs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dtree:", err)
			os.Exit(2)
		}
		w.SetFaultPlan(plan)
		if dst != nil {
			dst.SetFaultPlan(plan)
		}
		if needsTimeout {
			w.SetRecvTimeout(2 * time.Second)
		}
	}
	blocks := train.BlockPartition(procs)
	trees := make([]*tree.Tree, procs)
	if err := runWorld(w, func(c *mp.Comm) {
		trees[c.Rank()] = build(c, blocks[c.Rank()], o)
	}); err != nil {
		fmt.Fprintf(os.Stderr, "dtree: fault detected and build aborted (run with -recover to survive it): %v\n", err)
		os.Exit(1)
	}
	tr := w.Traffic()
	fmt.Printf("modeled time   %.3fs on %d processors (SP-2-like machine)\n", w.MaxClock(), procs)
	fmt.Printf("traffic        %d messages, %.2f MB, comm %.2fs / comp %.2fs (rank-summed)\n",
		tr.Msgs, float64(tr.Bytes)/1e6, tr.CommTime, tr.CompTime)
	if faultSpec != "" {
		for _, ev := range w.Faults() {
			fmt.Printf("fault          %v\n", ev)
		}
		if dead := w.DeadRanks(); len(dead) > 0 {
			fmt.Printf("dead ranks     %v (build recovered on the %d survivors)\n", dead, procs-len(dead))
		}
	}
	if st != nil {
		s := st.Stats()
		fmt.Printf("checkpoints    %d saved (%.2f MB), %d restored (%.2f MB)\n",
			s.Checkpoints, float64(s.Bytes)/1e6, s.Restores, float64(s.RestoredB)/1e6)
		if rec := w.Breakdown().Phase(core.PhaseRecovery); rec.Calls > 0 || rec.CommTime > 0 {
			fmt.Printf("recovery cost  comm %.3fs / comp %.3fs over %d collective calls (rank-summed)\n",
				rec.CommTime, rec.CompTime, rec.Calls)
		}
		if dst != nil {
			io := dst.DiskIO()
			fmt.Printf("ckpt store     %s: %.2f MB written, %.2f MB read back, %d fsyncs\n",
				dst.Dir(), float64(io.WrittenB)/1e6, float64(io.ReadB)/1e6, io.Syncs)
			for _, note := range dst.Notes() {
				fmt.Printf("ckpt note      %s\n", note)
			}
		}
	}
	if stats {
		fmt.Println("\nper-phase / per-collective modeled breakdown (rank-summed seconds):")
		fmt.Print(w.Breakdown().Table())
		if enc := w.EncodingByPhase(); len(enc) > 0 {
			fmt.Println("\nper-phase reduction encoding (rank-summed):")
			fmt.Print(mp.EncodingTable(enc))
		}
	}
	if traceOut != "" {
		if err := writeTrace(traceOut, w.Events()); err != nil {
			fmt.Fprintln(os.Stderr, "dtree:", err)
			os.Exit(1)
		}
		fmt.Printf("trace          %d events written to %s\n", len(w.Events()), traceOut)
	}
	for _, t := range trees {
		if t != nil {
			return t
		}
	}
	fmt.Fprintln(os.Stderr, "dtree: no surviving rank produced a tree")
	os.Exit(1)
	return nil
}

// runWorld runs body on every rank, converting a typed fault panic
// (detection without recovery) into an error instead of crashing the CLI.
func runWorld(w *mp.World, body func(*mp.Comm)) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if fe, ok := fault.AsError(r); ok {
				err = fe
				return
			}
			panic(r)
		}
	}()
	w.Run(body)
	return nil
}

// parseFault turns the -fault spec into a plan. The second result is true
// when the plan needs a receive timeout to surface (silent drops).
func parseFault(spec string, procs int) (*fault.Plan, bool, error) {
	part := strings.Split(spec, ":")
	atoi := func(s string) int {
		v, err := strconv.Atoi(s)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dtree: bad -fault field %q\n", s)
			os.Exit(2)
		}
		return v
	}
	switch part[0] {
	case "crash":
		if len(part) != 3 {
			return nil, false, fmt.Errorf("-fault crash wants crash:RANK:OP, got %q", spec)
		}
		return fault.NewPlan(fault.CrashAt(atoi(part[1]), fault.CollStart, atoi(part[2]))), false, nil
	case "delay":
		if len(part) != 4 {
			return nil, false, fmt.Errorf("-fault delay wants delay:RANK:OP:SECONDS, got %q", spec)
		}
		secs, err := strconv.ParseFloat(part[3], 64)
		if err != nil {
			return nil, false, fmt.Errorf("-fault delay seconds: %v", err)
		}
		return fault.NewPlan(fault.DelayAt(atoi(part[1]), fault.CollStart, atoi(part[2]), secs)), false, nil
	case "drop":
		if len(part) != 3 {
			return nil, false, fmt.Errorf("-fault drop wants drop:RANK:SEND, got %q", spec)
		}
		return fault.NewPlan(fault.DropAt(atoi(part[1]), atoi(part[2]), fault.AnyTag)), true, nil
	case "halt":
		// Crash every rank at the same operation index: in the lockstep
		// collective schedule all ranks die deterministically mid-build,
		// modeling a whole-process kill. The durable checkpoints survive
		// for a later -resume run.
		if len(part) != 2 {
			return nil, false, fmt.Errorf("-fault halt wants halt:OP, got %q", spec)
		}
		var fs []fault.Fault
		for r := 0; r < procs; r++ {
			fs = append(fs, fault.CrashAt(r, fault.CollStart, atoi(part[1])))
		}
		return fault.NewPlan(fs...), false, nil
	case "torn":
		if len(part) != 3 {
			return nil, false, fmt.Errorf("-fault torn wants torn:RANK:SAVE, got %q", spec)
		}
		return fault.NewPlan(fault.TornWriteAt(atoi(part[1]), atoi(part[2]))), false, nil
	case "bitflip":
		if len(part) != 4 {
			return nil, false, fmt.Errorf("-fault bitflip wants bitflip:RANK:SAVE:BIT, got %q", spec)
		}
		return fault.NewPlan(fault.BitFlipAt(atoi(part[1]), atoi(part[2]), atoi(part[3]))), false, nil
	case "random":
		if len(part) != 2 {
			return nil, false, fmt.Errorf("-fault random wants random:SEED, got %q", spec)
		}
		return fault.Random(uint64(atoi(part[1])), procs, 40), true, nil
	default:
		return nil, false, fmt.Errorf("unknown -fault kind %q (want crash|delay|drop|halt|torn|bitflip|random)", part[0])
	}
}

// writeTrace exports the event timeline as one JSON object per line.
func writeTrace(path string, events []mp.TraceEvent) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	for _, e := range events {
		if err := enc.Encode(e); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}
