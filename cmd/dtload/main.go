// Command dtload is the closed-loop load harness for the serving stack.
// It has two modes, both feeding the committed BENCH_serve.json
// trajectory:
//
// HTTP mode (default) drives a running dtserve with a fixed number of
// concurrent closed-loop workers — each worker POSTs a prebuilt
// /v1/predict batch, waits for the reply, and immediately posts the next
// — sweeping a list of concurrency levels and recording client-side
// throughput and latency quantiles per level:
//
//	dtserve -addr :8080 -model grove=grove.json &
//	dtload -url http://localhost:8080 -model grove -conc 1,2,4,8 -duration 5s
//
// Self-bench mode (-selfbench) needs no server: it trains forests of the
// configured sizes in process, compiles them, and measures the fused
// interleaved layout against the naive per-tree serving baseline (every
// member walks the whole batch through its own flat model, votes in a
// full row×class matrix) and against a single flat tree — the numbers
// behind the fused-layout acceptance gates (≥5x naive at 100 trees,
// within 10% of a single tree at 1 tree):
//
//	dtload -selfbench -rows 100000 -trees 1,10,100 -o BENCH_serve.json
//
// With -o the results merge into the named JSON file ("local" section
// for -selfbench, "http" section for HTTP runs), preserving the other
// section — CI regenerates one row and diffs schema keys.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"partree/internal/dataset"
	"partree/internal/forest"
	"partree/internal/quest"
	"partree/internal/serve"
	"partree/internal/tree"
)

func main() {
	var (
		url      = flag.String("url", "http://localhost:8080", "dtserve base URL (HTTP mode)")
		model    = flag.String("model", "quest", "model name to query (HTTP mode)")
		batch    = flag.Int("batch", 256, "records per request (HTTP mode)")
		concList = flag.String("conc", "1,2,4,8", "comma-separated closed-loop worker counts to sweep (HTTP mode)")
		duration = flag.Duration("duration", 5*time.Second, "measurement window per concurrency level (HTTP mode)")
		warmup   = flag.Duration("warmup", 500*time.Millisecond, "per-level warmup excluded from measurement (HTTP mode)")

		selfbench = flag.Bool("selfbench", false, "run the in-process fused-vs-naive benchmark instead of HTTP load")
		rows      = flag.Int("rows", 100000, "batch rows for -selfbench")
		trainRows = flag.Int("train-rows", 20000, "training rows per -selfbench forest (batch size is -rows)")
		treesList = flag.String("trees", "1,10,100", "comma-separated forest sizes for -selfbench")
		maxDepth  = flag.Int("maxdepth", 8, "member depth limit for -selfbench forests")
		builder   = flag.String("builder", "hunt", "member builder for -selfbench forests")
		minTime   = flag.Duration("min-time", 2*time.Second, "minimum measurement time per -selfbench configuration")

		fn   = flag.Int("function", 2, "Quest classification function for generated records")
		seed = flag.Uint64("seed", 1998, "generator seed")
		out  = flag.String("o", "", "merge results into this BENCH JSON file")
	)
	flag.Parse()

	if *selfbench {
		res, err := runSelfBench(*rows, *trainRows, parseInts(*treesList), *maxDepth, *builder, *fn, *seed, *minTime)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dtload:", err)
			os.Exit(1)
		}
		emit(*out, "local", res)
		return
	}
	res, err := runHTTP(*url, *model, *batch, parseInts(*concList), *duration, *warmup, *fn, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dtload:", err)
		os.Exit(1)
	}
	emit(*out, "http", res)
}

func parseInts(s string) []int {
	var out []int
	for _, p := range strings.Split(s, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		v, err := strconv.Atoi(p)
		if err != nil || v < 1 {
			fmt.Fprintf(os.Stderr, "dtload: bad list entry %q\n", p)
			os.Exit(2)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		fmt.Fprintln(os.Stderr, "dtload: empty list")
		os.Exit(2)
	}
	return out
}

// ---------------------------------------------------------------------------
// Self-bench mode

// selfConfig is one measured forest size in the "local" section.
type selfConfig struct {
	Trees              int     `json:"trees"`
	MaxDepth           int     `json:"maxdepth"`
	Builder            string  `json:"builder"`
	FusedNodes         int     `json:"fused_nodes"`
	FusedRowsPerSec    float64 `json:"fused_rows_per_sec"`
	NaiveRowsPerSec    float64 `json:"naive_rows_per_sec"`
	SingleRowsPerSec   float64 `json:"single_tree_rows_per_sec"`
	SpeedupVsNaive     float64 `json:"speedup_fused_vs_naive"`
	FusedVsSingleRatio float64 `json:"fused_vs_single_ratio"`
}

type selfResult struct {
	BatchRows int          `json:"batch_rows"`
	TrainRows int          `json:"train_rows"`
	Function  int          `json:"function"`
	Seed      uint64       `json:"seed"`
	Configs   []selfConfig `json:"configs"`
}

func runSelfBench(rows, trainRows int, sizes []int, maxDepth int, builder string, fn int, seed uint64, minTime time.Duration) (*selfResult, error) {
	train, err := quest.Generate(quest.Config{Function: fn, Seed: seed}, trainRows)
	if err != nil {
		return nil, err
	}
	batch, err := quest.Generate(quest.Config{Function: fn, Seed: seed + 1}, rows)
	if err != nil {
		return nil, err
	}
	res := &selfResult{BatchRows: rows, TrainRows: trainRows, Function: fn, Seed: seed}
	out := make([]int32, rows)
	for _, trees := range sizes {
		f, err := forest.Train(train, forest.Config{
			Trees:     trees,
			Builder:   builder,
			Seed:      seed,
			Bootstrap: true,
			Tree:      tree.Options{Binary: true, MaxDepth: maxDepth},
		})
		if err != nil {
			return nil, err
		}
		fz, err := forest.Compile(f)
		if err != nil {
			return nil, err
		}
		single := fz.Members[0]
		fused := measure(minTime, rows, func() { fz.PredictInto(batch, out, 0, rows) })
		naive := measure(minTime, rows, func() { fz.PredictNaiveInto(batch, out, 0, rows) })
		singleRate := measure(minTime, rows, func() { single.PredictInto(batch, out, 0, rows) })
		cfg := selfConfig{
			Trees:              trees,
			MaxDepth:           maxDepth,
			Builder:            builder,
			FusedNodes:         fz.Nodes(),
			FusedRowsPerSec:    fused,
			NaiveRowsPerSec:    naive,
			SingleRowsPerSec:   singleRate,
			SpeedupVsNaive:     fused / naive,
			FusedVsSingleRatio: fused / singleRate,
		}
		res.Configs = append(res.Configs, cfg)
		fmt.Printf("trees=%-4d nodes=%-7d fused %.0f rows/s  naive %.0f rows/s  single %.0f rows/s  speedup %.2fx  vs-single %.3f\n",
			trees, cfg.FusedNodes, fused, naive, singleRate, cfg.SpeedupVsNaive, cfg.FusedVsSingleRatio)
	}
	return res, nil
}

// measure repeats body until minTime has elapsed and returns rows/sec.
func measure(minTime time.Duration, rows int, body func()) float64 {
	body() // warm caches and page in tables
	start := time.Now()
	reps := 0
	for time.Since(start) < minTime {
		body()
		reps++
	}
	return float64(rows*reps) / time.Since(start).Seconds()
}

// ---------------------------------------------------------------------------
// HTTP mode

// httpLevel is one concurrency level of the sweep.
type httpLevel struct {
	Conc       int     `json:"conc"`
	Requests   int64   `json:"requests"`
	Errors     int64   `json:"errors"`
	ReqPerSec  float64 `json:"requests_per_sec"`
	RowsPerSec float64 `json:"rows_per_sec"`
	P50MS      float64 `json:"p50_ms"`
	P95MS      float64 `json:"p95_ms"`
	P99MS      float64 `json:"p99_ms"`
}

type httpResult struct {
	Model    string      `json:"model"`
	BatchPer int         `json:"rows_per_request"`
	Levels   []httpLevel `json:"levels"`
}

func runHTTP(base, model string, batch int, concs []int, duration, warmup time.Duration, fn int, seed uint64) (*httpResult, error) {
	// Prebuild a handful of distinct request bodies so the server sees
	// varied rows while the client does no JSON work on the hot path.
	const bodies = 8
	d, err := quest.Generate(quest.Config{Function: fn, Seed: seed}, batch*bodies)
	if err != nil {
		return nil, err
	}
	reqs := make([][]byte, bodies)
	for b := 0; b < bodies; b++ {
		reqs[b], err = predictBody(model, d, b*batch, (b+1)*batch)
		if err != nil {
			return nil, err
		}
	}
	maxConc := 0
	for _, c := range concs {
		if c > maxConc {
			maxConc = c
		}
	}
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        maxConc * 2,
		MaxIdleConnsPerHost: maxConc * 2,
	}}
	// Fail fast if the server or model is absent before sweeping.
	if err := probe(client, base, model, reqs[0]); err != nil {
		return nil, err
	}

	res := &httpResult{Model: model, BatchPer: batch}
	for _, conc := range concs {
		lv, err := runLevel(client, base, conc, batch, duration, warmup, reqs)
		if err != nil {
			return nil, err
		}
		res.Levels = append(res.Levels, *lv)
		fmt.Printf("conc=%-3d %7.1f req/s  %9.0f rows/s  p50 %.2fms  p95 %.2fms  p99 %.2fms  errors %d\n",
			conc, lv.ReqPerSec, lv.RowsPerSec, lv.P50MS, lv.P95MS, lv.P99MS, lv.Errors)
	}
	return res, nil
}

func probe(client *http.Client, base, model string, body []byte) error {
	resp, err := client.Post(base+"/v1/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("probing %s: %w", base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("probe of model %q got %d: %s", model, resp.StatusCode, msg)
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}

// runLevel runs one closed-loop concurrency level: conc workers, each
// posting its next prebuilt body the moment the previous reply is fully
// read. Client-side latency lands in a lock-free histogram; the
// measurement window starts after the warmup so connection setup and
// first-touch effects stay out of the quantiles.
func runLevel(client *http.Client, base string, conc, batch int, duration, warmup time.Duration, reqs [][]byte) (*httpLevel, error) {
	hist := serve.NewHist()
	var requests, errs atomic.Int64
	var measuring atomic.Bool
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				start := time.Now()
				resp, err := client.Post(base+"/v1/predict", "application/json",
					bytes.NewReader(reqs[i%len(reqs)]))
				ok := err == nil && resp.StatusCode == http.StatusOK
				if resp != nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
				if measuring.Load() {
					requests.Add(1)
					if !ok {
						errs.Add(1)
					}
					hist.Observe(float64(time.Since(start).Nanoseconds()) / 1e6)
				}
			}
		}(w)
	}
	time.Sleep(warmup)
	measuring.Store(true)
	measStart := time.Now()
	time.Sleep(duration)
	measuring.Store(false)
	elapsed := time.Since(measStart).Seconds()
	close(stop)
	wg.Wait()

	n := requests.Load()
	lv := &httpLevel{
		Conc:       conc,
		Requests:   n,
		Errors:     errs.Load(),
		ReqPerSec:  float64(n) / elapsed,
		RowsPerSec: float64(n) * float64(batch) / elapsed,
		P50MS:      hist.Quantile(0.5),
		P95MS:      hist.Quantile(0.95),
		P99MS:      hist.Quantile(0.99),
	}
	if n == 0 {
		return nil, fmt.Errorf("concurrency %d completed no requests in %s", conc, duration)
	}
	return lv, nil
}

// predictBody renders rows [lo, hi) of d as a /v1/predict request body.
func predictBody(model string, d *dataset.Dataset, lo, hi int) ([]byte, error) {
	records := make([]map[string]interface{}, 0, hi-lo)
	for i := lo; i < hi; i++ {
		rec := make(map[string]interface{}, d.Schema.NumAttrs())
		for a, attr := range d.Schema.Attrs {
			if attr.Kind == dataset.Categorical {
				rec[attr.Name] = attr.Values[d.Cat[a][i]]
			} else {
				rec[attr.Name] = d.Cont[a][i]
			}
		}
		records = append(records, rec)
	}
	return json.Marshal(map[string]interface{}{"model": model, "records": records})
}

// ---------------------------------------------------------------------------
// BENCH JSON merge

// emit prints the section and, with a path, merges it into the BENCH
// file under key, preserving other sections.
func emit(path, key string, section interface{}) {
	if path == "" {
		return
	}
	doc := map[string]json.RawMessage{}
	if old, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(old, &doc); err != nil {
			fmt.Fprintf(os.Stderr, "dtload: existing %s is not a JSON object: %v\n", path, err)
			os.Exit(1)
		}
	}
	doc["benchmark"], _ = json.Marshal("serve")
	raw, err := json.Marshal(section)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dtload:", err)
		os.Exit(1)
	}
	doc[key] = raw
	// Deterministic key order for a committed artifact.
	keys := make([]string, 0, len(doc))
	for k := range doc {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var buf bytes.Buffer
	buf.WriteString("{\n")
	for i, k := range keys {
		var pretty bytes.Buffer
		if err := json.Indent(&pretty, doc[k], " ", " "); err != nil {
			fmt.Fprintln(os.Stderr, "dtload:", err)
			os.Exit(1)
		}
		fmt.Fprintf(&buf, " %q: %s", k, pretty.Bytes())
		if i < len(keys)-1 {
			buf.WriteString(",")
		}
		buf.WriteString("\n")
	}
	buf.WriteString("}\n")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "dtload:", err)
		os.Exit(1)
	}
	fmt.Printf("%s section written to %s\n", key, path)
}
