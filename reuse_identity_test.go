// Differential identity tests for the statistics-reuse layer: sibling
// subtraction and sparse reduction encoding are pure transport/compute
// optimisations, so every formulation must grow a tree bit-identical to
// its reuse-disabled run — multi-rank, across flush boundaries, and under
// crash/recovery. Modeled costs intentionally differ between reuse-on and
// reuse-off runs (that is the point of the optimisation), so the cost
// assertions here are about *determinism*: two identical reuse-on runs
// must produce bit-identical breakdowns, and a sparse threshold of 0 must
// be bit-identical to the plain dense collective (the mp tests pin that at
// the collective level; here it rides the full builders).
package partree_test

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"partree/internal/core"
	"partree/internal/dataset"
	"partree/internal/fault"
	"partree/internal/kernel"
	"partree/internal/mp"
	"partree/internal/scalparc"
	"partree/internal/sliq"
	"partree/internal/sprint"
	"partree/internal/tree"
	"partree/internal/vertical"
)

// reuseBuilders enumerates every formulation with the reuse options ro
// threaded through. Mirrors kernelBuilders; the serial builders read
// tree.Options.Reuse, the parallel ones core.Options.Tree.Reuse.
func reuseBuilders(discrete bool, ro kernel.Options) []kernelBuild {
	serialOpts := tree.Options{Binary: true, Reuse: ro}
	coreOpts := core.Options{Tree: tree.Options{Binary: true, Reuse: ro}, SyncEveryNodes: 8}
	if !discrete {
		coreOpts.MicroBins = 32
		coreOpts.NodeBins = 6
	}
	const p = 3
	return []kernelBuild{
		{"hunt", func(t *testing.T, d *dataset.Dataset) (*tree.Tree, *mp.World) {
			return tree.BuildHunt(d, serialOpts), nil
		}},
		{"bfs", func(t *testing.T, d *dataset.Dataset) (*tree.Tree, *mp.World) {
			return tree.BuildBFS(d, coreOpts.SerialOptions(d)), nil
		}},
		{"sliq", func(t *testing.T, d *dataset.Dataset) (*tree.Tree, *mp.World) {
			return sliq.Build(d, serialOpts), nil
		}},
		{"sprint", func(t *testing.T, d *dataset.Dataset) (*tree.Tree, *mp.World) {
			return sprint.Build(d, serialOpts), nil
		}},
		{"sync", func(t *testing.T, d *dataset.Dataset) (*tree.Tree, *mp.World) {
			return runRanks(t, d, p, func(c *mp.Comm, local *dataset.Dataset) *tree.Tree {
				return core.BuildSync(c, local, coreOpts)
			})
		}},
		{"partitioned", func(t *testing.T, d *dataset.Dataset) (*tree.Tree, *mp.World) {
			return runRanks(t, d, p, func(c *mp.Comm, local *dataset.Dataset) *tree.Tree {
				return core.BuildPartitioned(c, local, coreOpts)
			})
		}},
		{"hybrid", func(t *testing.T, d *dataset.Dataset) (*tree.Tree, *mp.World) {
			return runRanks(t, d, p, func(c *mp.Comm, local *dataset.Dataset) *tree.Tree {
				return core.BuildHybrid(c, local, coreOpts)
			})
		}},
		{"scalparc", func(t *testing.T, d *dataset.Dataset) (*tree.Tree, *mp.World) {
			return runRanks(t, d, p, func(c *mp.Comm, local *dataset.Dataset) *tree.Tree {
				return scalparc.Build(c, local, scalparc.Options{Tree: serialOpts, Mode: scalparc.DistributedHash}).Tree
			})
		}},
		{"vertical", func(t *testing.T, d *dataset.Dataset) (*tree.Tree, *mp.World) {
			w := mp.NewWorld(p, mp.SP2())
			trees := make([]*tree.Tree, p)
			w.Run(func(c *mp.Comm) {
				trees[c.Rank()] = vertical.Build(c, d, serialOpts)
			})
			for r := 1; r < p; r++ {
				if diff := tree.Diff(trees[0], trees[r]); diff != "" {
					t.Fatalf("rank %d tree differs from rank 0: %s", r, diff)
				}
			}
			return trees[0], w
		}},
	}
}

// TestReuseIdentity: every formulation grows a bit-identical tree with the
// reuse layer in any configuration — subtraction alone, sparse encoding
// alone (at thresholds 0.5 and 1), and both together — as with the layer
// disabled.
func TestReuseIdentity(t *testing.T) {
	configs := []struct {
		name string
		ro   kernel.Options
	}{
		{"sub", kernel.Options{Subtraction: true}},
		{"sparse0.5", kernel.Options{SparseThreshold: 0.5}},
		{"sparse1", kernel.Options{SparseThreshold: 1}},
		{"sub+sparse", kernel.ReuseAll()},
	}
	for _, discrete := range []bool{true, false} {
		d := genKernelData(t, discrete)
		off := reuseBuilders(discrete, kernel.Options{})
		for bi := range off {
			bi := bi
			t.Run(fmt.Sprintf("discrete=%v/%s", discrete, off[bi].name), func(t *testing.T) {
				want, _ := off[bi].build(t, d)
				for _, cfg := range configs {
					got, _ := reuseBuilders(discrete, cfg.ro)[bi].build(t, d)
					if diff := tree.Diff(want, got); diff != "" {
						t.Fatalf("%s: tree differs from reuse-disabled reference: %s", cfg.name, diff)
					}
				}
			})
		}
	}
}

// TestReuseDeterministicCosts: two identical reuse-enabled runs of each
// multi-rank formulation produce bit-identical modeled cost breakdowns and
// encoding stats, and a sparse threshold of 0 combined with subtraction
// records no encoding stats at all (the dense collective is used verbatim).
func TestReuseDeterministicCosts(t *testing.T) {
	d := genKernelData(t, true)
	idx := map[string]bool{"sync": true, "partitioned": true, "hybrid": true, "scalparc": true}
	bs1 := reuseBuilders(true, kernel.ReuseAll())
	bs2 := reuseBuilders(true, kernel.ReuseAll())
	for bi := range bs1 {
		if !idx[bs1[bi].name] {
			continue
		}
		bi := bi
		t.Run(bs1[bi].name, func(t *testing.T) {
			_, w1 := bs1[bi].build(t, d)
			_, w2 := bs2[bi].build(t, d)
			if !reflect.DeepEqual(w1.Breakdown(), w2.Breakdown()) {
				t.Fatal("reuse-enabled breakdown not deterministic across identical runs")
			}
			if !reflect.DeepEqual(w1.EncodingByPhase(), w2.EncodingByPhase()) {
				t.Fatal("encoding stats not deterministic across identical runs")
			}
			_, w3 := reuseBuilders(true, kernel.Options{Subtraction: true})[bi].build(t, d)
			if enc := w3.EncodingByPhase(); len(enc) != 0 {
				t.Fatalf("threshold 0 recorded encoding stats: %+v", enc)
			}
		})
	}
}

// TestReuseFlushBoundaries: the synchronous formulation caches a family
// only when all its children land in one SyncEveryNodes flush chunk of the
// next level; families straddling a flush boundary must be re-tabulated,
// never derived across flushes. Sweeping small odd chunk sizes forces many
// straddles — the tree must stay bit-identical throughout.
func TestReuseFlushBoundaries(t *testing.T) {
	d := genKernelData(t, true)
	const p = 3
	for _, sen := range []int{1, 2, 3, 4, 5, 7, 100} {
		sen := sen
		t.Run(fmt.Sprintf("syncEvery=%d", sen), func(t *testing.T) {
			mk := func(ro kernel.Options) *tree.Tree {
				o := core.Options{Tree: tree.Options{Binary: true, Reuse: ro}, SyncEveryNodes: sen}
				tr, _ := runRanks(t, d, p, func(c *mp.Comm, local *dataset.Dataset) *tree.Tree {
					return core.BuildSync(c, local, o)
				})
				return tr
			}
			want := mk(kernel.Options{})
			got := mk(kernel.ReuseAll())
			if diff := tree.Diff(want, got); diff != "" {
				t.Fatalf("tree differs from reuse-disabled reference: %s", diff)
			}
		})
	}
}

// TestReuseIdentityUnderFaults: crash/recovery with the reuse layer on.
// The retried level runs with a dropped cache (it must not survive the
// restore — its contents describe the failed attempt's frontier), and the
// survivors must still finish with the fault-free reuse-disabled tree.
func TestReuseIdentityUnderFaults(t *testing.T) {
	d := genKernelData(t, true)
	o := core.Options{Tree: tree.Options{Binary: true}, SyncEveryNodes: 8}
	want := tree.BuildBFS(d, o.SerialOptions(d))

	const p = 4
	run := func(t *testing.T, n int, build func(c *mp.Comm, local *dataset.Dataset) *tree.Tree) {
		w := mp.NewWorld(p, mp.SP2())
		w.SetFaultPlan(fault.NewPlan(fault.CrashAt(n%p, fault.CollStart, n)))
		blocks := d.BlockPartition(p)
		trees := make([]*tree.Tree, p)
		done := make(chan struct{})
		go func() {
			defer close(done)
			w.Run(func(c *mp.Comm) {
				trees[c.Rank()] = build(c, blocks[c.Rank()])
			})
		}()
		select {
		case <-done:
		case <-time.After(60 * time.Second):
			t.Fatal("recovery run deadlocked (watchdog)")
		}
		dead := map[int]bool{}
		for _, r := range w.DeadRanks() {
			dead[r] = true
		}
		for r, tr := range trees {
			if tr == nil {
				if !dead[r] {
					t.Fatalf("rank %d returned no tree but is not dead", r)
				}
				continue
			}
			if diff := tree.Diff(want, tr); diff != "" {
				t.Fatalf("rank %d: recovered tree differs from fault-free reference: %s", r, diff)
			}
		}
	}
	ro := o
	ro.Tree.Reuse = kernel.ReuseAll()
	ro.FT = &core.FTOptions{Store: fault.NewStore()}
	for _, n := range []int{3, 5, 8} {
		t.Run(fmt.Sprintf("sync-crash-op%d", n), func(t *testing.T) {
			run(t, n, func(c *mp.Comm, local *dataset.Dataset) *tree.Tree {
				return core.BuildSync(c, local, ro)
			})
		})
		t.Run(fmt.Sprintf("hybrid-crash-op%d", n), func(t *testing.T) {
			run(t, n, func(c *mp.Comm, local *dataset.Dataset) *tree.Tree {
				return core.BuildHybrid(c, local, ro)
			})
		})
	}
}
