// Differential identity tests for the statistics kernel's intra-rank
// parallel path: with kernel.ParallelThreshold forced to 1 every tabulate
// call takes the worker fork/merge path, and every formulation — serial
// and multi-rank, with and without injected faults — must grow a tree
// bit-identical to its serial-kernel run, with bit-identical modeled cost
// breakdowns. This is the acceptance gate for the kernel refactor: chunked
// integer-count merges are associative, so execution strategy must be
// unobservable.
package partree_test

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"partree/internal/core"
	"partree/internal/dataset"
	"partree/internal/discretize"
	"partree/internal/fault"
	"partree/internal/kernel"
	"partree/internal/mp"
	"partree/internal/quest"
	"partree/internal/scalparc"
	"partree/internal/sliq"
	"partree/internal/sprint"
	"partree/internal/tree"
	"partree/internal/vertical"
)

// withKernelPath runs f under an explicit kernel gating: parallel=true
// forces the worker path for every row count, parallel=false forces the
// serial loop. Settings are restored before returning.
func withKernelPath(parallel bool, f func()) {
	oldT, oldW := kernel.ParallelThreshold, kernel.MaxWorkers
	if parallel {
		kernel.ParallelThreshold = 1
		kernel.MaxWorkers = 4
	} else {
		kernel.ParallelThreshold = 1 << 62
	}
	defer func() { kernel.ParallelThreshold, kernel.MaxWorkers = oldT, oldW }()
	f()
}

// kernelBuild is one named way of growing a tree from a dataset; world is
// nil for the single-process builders.
type kernelBuild struct {
	name  string
	build func(t *testing.T, d *dataset.Dataset) (*tree.Tree, *mp.World)
}

func runRanks(t *testing.T, d *dataset.Dataset, p int, f func(c *mp.Comm, local *dataset.Dataset) *tree.Tree) (*tree.Tree, *mp.World) {
	t.Helper()
	w := mp.NewWorld(p, mp.SP2())
	blocks := d.BlockPartition(p)
	trees := make([]*tree.Tree, p)
	w.Run(func(c *mp.Comm) {
		trees[c.Rank()] = f(c, blocks[c.Rank()])
	})
	for r := 1; r < p; r++ {
		if diff := tree.Diff(trees[0], trees[r]); diff != "" {
			t.Fatalf("rank %d tree differs from rank 0: %s", r, diff)
		}
	}
	return trees[0], w
}

// kernelBuilders enumerates every formulation over the shared kernel. The
// discrete flag selects option shapes (the continuous multi-rank builders
// need per-node discretization).
func kernelBuilders(discrete bool) []kernelBuild {
	serialOpts := tree.Options{Binary: true}
	coreOpts := core.Options{Tree: tree.Options{Binary: true}, SyncEveryNodes: 8}
	if !discrete {
		coreOpts.MicroBins = 32
		coreOpts.NodeBins = 6
	}
	const p = 3
	bs := []kernelBuild{
		{"hunt", func(t *testing.T, d *dataset.Dataset) (*tree.Tree, *mp.World) {
			return tree.BuildHunt(d, serialOpts), nil
		}},
		{"bfs", func(t *testing.T, d *dataset.Dataset) (*tree.Tree, *mp.World) {
			return tree.BuildBFS(d, coreOpts.SerialOptions(d)), nil
		}},
		{"sliq", func(t *testing.T, d *dataset.Dataset) (*tree.Tree, *mp.World) {
			return sliq.Build(d, serialOpts), nil
		}},
		{"sprint", func(t *testing.T, d *dataset.Dataset) (*tree.Tree, *mp.World) {
			return sprint.Build(d, serialOpts), nil
		}},
		{"sync", func(t *testing.T, d *dataset.Dataset) (*tree.Tree, *mp.World) {
			return runRanks(t, d, p, func(c *mp.Comm, local *dataset.Dataset) *tree.Tree {
				return core.BuildSync(c, local, coreOpts)
			})
		}},
		{"partitioned", func(t *testing.T, d *dataset.Dataset) (*tree.Tree, *mp.World) {
			return runRanks(t, d, p, func(c *mp.Comm, local *dataset.Dataset) *tree.Tree {
				return core.BuildPartitioned(c, local, coreOpts)
			})
		}},
		{"hybrid", func(t *testing.T, d *dataset.Dataset) (*tree.Tree, *mp.World) {
			return runRanks(t, d, p, func(c *mp.Comm, local *dataset.Dataset) *tree.Tree {
				return core.BuildHybrid(c, local, coreOpts)
			})
		}},
		{"scalparc", func(t *testing.T, d *dataset.Dataset) (*tree.Tree, *mp.World) {
			return runRanks(t, d, p, func(c *mp.Comm, local *dataset.Dataset) *tree.Tree {
				return scalparc.Build(c, local, scalparc.Options{Tree: serialOpts, Mode: scalparc.DistributedHash}).Tree
			})
		}},
		{"vertical", func(t *testing.T, d *dataset.Dataset) (*tree.Tree, *mp.World) {
			// Vertical partitioning divides columns, not rows: every rank
			// holds the full dataset.
			w := mp.NewWorld(p, mp.SP2())
			trees := make([]*tree.Tree, p)
			w.Run(func(c *mp.Comm) {
				trees[c.Rank()] = vertical.Build(c, d, serialOpts)
			})
			for r := 1; r < p; r++ {
				if diff := tree.Diff(trees[0], trees[r]); diff != "" {
					t.Fatalf("rank %d tree differs from rank 0: %s", r, diff)
				}
			}
			return trees[0], w
		}},
	}
	return bs
}

func genKernelData(t *testing.T, discrete bool) *dataset.Dataset {
	t.Helper()
	d, err := quest.Generate(quest.Config{Function: 2, Seed: 77}, 1500)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	if discrete {
		return discretize.UniformPaper(d, quest.PaperBins(), quest.Ranges())
	}
	return d
}

// TestKernelParallelPathIdentity: for every formulation, the tree grown
// with the forced intra-rank parallel tabulate path is bit-identical to
// the serial-kernel tree, and so is the per-phase / per-collective modeled
// cost breakdown (the modeled-ops invariant: charges depend on input
// sizes, never on execution strategy).
func TestKernelParallelPathIdentity(t *testing.T) {
	for _, discrete := range []bool{true, false} {
		d := genKernelData(t, discrete)
		for _, b := range kernelBuilders(discrete) {
			t.Run(fmt.Sprintf("discrete=%v/%s", discrete, b.name), func(t *testing.T) {
				var wantTree, gotTree *tree.Tree
				var wantW, gotW *mp.World
				withKernelPath(false, func() { wantTree, wantW = b.build(t, d) })
				withKernelPath(true, func() { gotTree, gotW = b.build(t, d) })
				if diff := tree.Diff(wantTree, gotTree); diff != "" {
					t.Fatalf("parallel-kernel tree differs from serial-kernel tree: %s", diff)
				}
				if wantW != nil && gotW != nil {
					wb, gb := wantW.Breakdown(), gotW.Breakdown()
					if !reflect.DeepEqual(wb, gb) {
						t.Fatalf("modeled cost breakdown drifted between kernel paths:\nserial:   %+v\nparallel: %+v", wb, gb)
					}
				}
			})
		}
	}
}

// TestKernelParallelPathIdentityUnderFaults: crash/recovery runs take the
// same split decisions whichever kernel path tabulated the statistics —
// survivors of a seeded rank crash finish with the fault-free reference
// tree even when every tabulation forked workers.
func TestKernelParallelPathIdentityUnderFaults(t *testing.T) {
	d := genKernelData(t, true)
	o := core.Options{Tree: tree.Options{Binary: true}, SyncEveryNodes: 8}
	var want *tree.Tree
	withKernelPath(false, func() { want = tree.BuildBFS(d, o.SerialOptions(d)) })

	const p = 4
	for _, n := range []int{3, 5, 8} {
		t.Run(fmt.Sprintf("crash-op%d", n), func(t *testing.T) {
			withKernelPath(true, func() {
				ro := o
				ro.FT = &core.FTOptions{Store: fault.NewStore()}
				w := mp.NewWorld(p, mp.SP2())
				w.SetFaultPlan(fault.NewPlan(fault.CrashAt(n%p, fault.CollStart, n)))
				blocks := d.BlockPartition(p)
				trees := make([]*tree.Tree, p)
				done := make(chan struct{})
				go func() {
					defer close(done)
					w.Run(func(c *mp.Comm) {
						trees[c.Rank()] = core.BuildSync(c, blocks[c.Rank()], ro)
					})
				}()
				select {
				case <-done:
				case <-time.After(60 * time.Second):
					t.Fatal("recovery run deadlocked (watchdog)")
				}
				dead := map[int]bool{}
				for _, r := range w.DeadRanks() {
					dead[r] = true
				}
				for r, tr := range trees {
					if tr == nil {
						if !dead[r] {
							t.Fatalf("rank %d returned no tree but is not dead", r)
						}
						continue
					}
					if diff := tree.Diff(want, tr); diff != "" {
						t.Fatalf("rank %d: recovered tree differs from fault-free reference: %s", r, diff)
					}
				}
			})
		})
	}
}
