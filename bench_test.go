// Package partree's root benchmark harness regenerates every table and
// figure of the paper's evaluation as a testing.B benchmark. Wall-clock
// ns/op measures the simulator on the host; the figures' actual series —
// modeled seconds on the SP-2-like machine and derived speedups — are
// attached as custom metrics (modeled_sec, speedup), so
//
//	go test -bench=. -benchmem
//
// prints, for each configuration, both the host cost and the
// paper-comparable numbers. Dataset sizes are laptop-scale fractions of
// the paper's (see EXPERIMENTS.md for the mapping and the recorded
// series at default scale).
package partree_test

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"testing"

	"partree/internal/core"
	"partree/internal/criteria"
	"partree/internal/dataset"
	"partree/internal/experiments"
	"partree/internal/flat"
	"partree/internal/kernel"
	"partree/internal/mp"
	"partree/internal/predict"
	"partree/internal/quest"
	"partree/internal/scalparc"
	"partree/internal/sliq"
	"partree/internal/sprint"
	"partree/internal/tree"
)

// Benchmark dataset sizes: 1/16 of the paper's 0.8M/1.6M keeps a full
// sweep under a minute per benchmark on a laptop while preserving the
// comm/compute regime (see EXPERIMENTS.md).
const (
	fig6Small = 12500
	fig6Large = 25000
	fig7N     = 12500
	fig8N     = 8000
	fig9Per   = 2000
)

// reportRun attaches the modeled series values to the benchmark: the
// headline numbers plus the per-collective/per-phase split (allreduce_sec
// is the statistics-reduction wire time, shuffle_sec the moving +
// load-balancing time of the record shuffles, both rank-summed).
func reportRun(b *testing.B, res experiments.Result, t1 float64) {
	b.ReportMetric(res.ModeledSeconds, "modeled_sec")
	if t1 > 0 {
		b.ReportMetric(t1/res.ModeledSeconds, "speedup")
	}
	b.ReportMetric(float64(res.Traffic.Bytes)/1e6, "comm_MB")
	b.ReportMetric(float64(res.Traffic.Bytes), "comm_bytes")
	b.ReportMetric(res.Breakdown.Coll(mp.CollAllreduce).CommTime, "allreduce_sec")
	b.ReportMetric(res.Breakdown.Phase(core.PhaseMoving).CommTime+
		res.Breakdown.Phase(core.PhaseLoadBalance).CommTime, "shuffle_sec")
}

// serialBaseline caches P=1 modeled times per configuration so speedups
// can be attached to each parallel benchmark.
var serialBaseline = map[string]float64{}

func baseline(b *testing.B, spec experiments.Spec) float64 {
	key := fmt.Sprintf("%s/%d/%v", spec.Formulation, spec.Records, spec.Continuous)
	if t, ok := serialBaseline[key]; ok {
		return t
	}
	s1 := spec
	s1.Procs = 1
	t := experiments.Run(s1).ModeledSeconds
	serialBaseline[key] = t
	return t
}

// BenchmarkFig6 regenerates Figure 6: speedup of the three formulations
// on the function-2 dataset with the paper's uniform discretization.
func BenchmarkFig6(b *testing.B) {
	for _, n := range []int{fig6Small, fig6Large} {
		for _, f := range []experiments.Formulation{experiments.Sync, experiments.Partitioned, experiments.Hybrid} {
			for _, p := range []int{2, 4, 8, 16} {
				spec := experiments.Spec{Formulation: f, Records: n, Procs: p}
				b.Run(fmt.Sprintf("n=%d/%s/p=%d", n, f, p), func(b *testing.B) {
					t1 := baseline(b, spec)
					var res experiments.Result
					for i := 0; i < b.N; i++ {
						res = experiments.Run(spec)
					}
					reportRun(b, res, t1)
				})
			}
		}
	}
}

// BenchmarkFig7 regenerates Figure 7: hybrid runtime vs. splitting ratio
// (modeled minimum expected near ratio 1.0).
func BenchmarkFig7(b *testing.B) {
	for _, ratio := range []float64{0.25, 0.5, 1, 2, 4} {
		spec := experiments.Spec{
			Formulation: experiments.Hybrid,
			Records:     fig7N,
			Procs:       8,
			Options:     core.Options{SplitRatio: ratio},
		}
		b.Run(fmt.Sprintf("ratio=%g", ratio), func(b *testing.B) {
			var res experiments.Result
			for i := 0; i < b.N; i++ {
				res = experiments.Run(spec)
			}
			reportRun(b, res, 0)
		})
	}
}

// BenchmarkFig8 regenerates Figure 8: hybrid speedup with per-node
// clustering discretization of raw continuous attributes, to 64 modeled
// processors (the paper goes to 128; -short keeps bench time bounded).
func BenchmarkFig8(b *testing.B) {
	for _, p := range []int{4, 16, 64} {
		spec := experiments.Spec{
			Formulation: experiments.Hybrid,
			Records:     fig8N,
			Procs:       p,
			Continuous:  true,
		}
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			t1 := baseline(b, spec)
			var res experiments.Result
			for i := 0; i < b.N; i++ {
				res = experiments.Run(spec)
			}
			reportRun(b, res, t1)
		})
	}
}

// BenchmarkFig9 regenerates Figure 9: scaleup at fixed per-processor
// load; modeled_sec should stay nearly flat as p grows.
func BenchmarkFig9(b *testing.B) {
	for _, p := range []int{1, 4, 16, 32} {
		spec := experiments.Spec{
			Formulation: experiments.Hybrid,
			Records:     fig9Per * p,
			Procs:       p,
			Continuous:  true,
		}
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			var res experiments.Result
			for i := 0; i < b.N; i++ {
				res = experiments.Run(spec)
			}
			reportRun(b, res, 0)
		})
	}
}

// BenchmarkTable2 measures the histogram tabulation that Table 2
// exemplifies: class-distribution collection for a categorical attribute.
func BenchmarkTable2(b *testing.B) {
	d, err := quest.Generate(quest.Config{Function: 2, Seed: 1}, 100000)
	if err != nil {
		b.Fatal(err)
	}
	idx := d.AllIndex()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := criteria.HistFor(d.Cat[quest.Car], d.Class, idx, 20, 2)
		if h.Total() == 0 {
			b.Fatal("empty histogram")
		}
	}
}

// BenchmarkTable3 measures the sorted-scan binary-split search that
// Table 3 exemplifies, on a pre-sorted continuous attribute.
func BenchmarkTable3(b *testing.B) {
	d, err := quest.Generate(quest.Config{Function: 2, Seed: 1}, 100000)
	if err != nil {
		b.Fatal(err)
	}
	values := append([]float64(nil), d.Cont[quest.Salary]...)
	classes := append([]int32(nil), d.Class...)
	sortPairs(values, classes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := criteria.BestContinuousSplit(values, classes, 2, criteria.Entropy); !ok {
			b.Fatal("no split")
		}
	}
}

func sortPairs(values []float64, classes []int32) {
	idx := make([]int, len(values))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return values[idx[a]] < values[idx[b]] })
	v2 := append([]float64(nil), values...)
	c2 := append([]int32(nil), classes...)
	for j, i := range idx {
		values[j], classes[j] = v2[i], c2[i]
	}
}

// BenchmarkSerialBuilders is the §2.1 ablation: C4.5-style per-node
// sorting (Hunt) versus SPRINT's pre-sorted attribute lists, in real host
// time on identical data — the motivation for the SLIQ/SPRINT substrate.
func BenchmarkSerialBuilders(b *testing.B) {
	d, err := quest.Generate(quest.Config{Function: 2, Seed: 3}, 20000)
	if err != nil {
		b.Fatal(err)
	}
	o := tree.Options{Binary: true, MaxDepth: 10}
	b.Run("hunt-per-node-sort", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tree.BuildHunt(d, o)
		}
	})
	b.Run("sprint-presorted", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sprint.Build(d, o)
		}
	})
	b.Run("sliq-classlist", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sliq.Build(d, o)
		}
	})
}

// BenchmarkAllreduce measures the message-passing substrate itself: one
// histogram-sized global reduction across modeled processors.
func BenchmarkAllreduce(b *testing.B) {
	for _, p := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			w := mp.NewWorld(p, mp.SP2())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.Run(func(c *mp.Comm) {
					x := make([]int64, 4096)
					mp.Allreduce(c, x, mp.Sum)
				})
			}
		})
	}
}

// BenchmarkHashSplit compares the §2.2 splitting-phase strategies head to
// head: parallel SPRINT's replicated hash table (all-to-all broadcast,
// O(N) per processor) vs ScalParC's distributed hash (personalized
// communication, O(N/P) per processor). Custom metrics expose the modeled
// time, the peak per-rank hash entries and the per-rank hash-exchange
// volume.
func BenchmarkHashSplit(b *testing.B) {
	d, err := quest.Generate(quest.Config{Function: 2, Seed: 6}, 8000)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []scalparc.Mode{scalparc.FullHash, scalparc.DistributedHash} {
		for _, p := range []int{4, 16} {
			b.Run(fmt.Sprintf("%s/p=%d", mode, p), func(b *testing.B) {
				var res scalparc.Result
				var modeled float64
				for i := 0; i < b.N; i++ {
					w := mp.NewWorld(p, mp.SP2())
					blocks := d.BlockPartition(p)
					results := make([]scalparc.Result, p)
					w.Run(func(c *mp.Comm) {
						results[c.Rank()] = scalparc.Build(c, blocks[c.Rank()],
							scalparc.Options{Tree: tree.Options{Binary: true, MaxDepth: 6}, Mode: mode})
					})
					res = results[0]
					for _, r := range results {
						if r.MaxHashEntries > res.MaxHashEntries {
							res.MaxHashEntries = r.MaxHashEntries
						}
						if r.HashBytes > res.HashBytes {
							res.HashBytes = r.HashBytes
						}
					}
					modeled = w.MaxClock()
				}
				b.ReportMetric(modeled, "modeled_sec")
				b.ReportMetric(float64(res.MaxHashEntries), "hash_entries")
				b.ReportMetric(float64(res.HashBytes)/1e6, "hash_MB")
			})
		}
	}
}

// BenchmarkInference measures the serving path on a 100k-row batch and
// records the inference perf trajectory: the pointer tree's per-row walk
// (the pre-subsystem baseline), the flat compiled table walked per row
// (locality win), and the batched parallel engine over all cores
// (locality + parallelism). rows_per_sec is the headline series; the
// acceptance bar is flat-batch-parallel beating pointer-per-row.
func BenchmarkInference(b *testing.B) {
	// Perturbation makes the concept imperfectly learnable, so growing to
	// purity yields a production-sized tree (thousands of nodes) — deep
	// enough that the pointer walk's cache misses show. On a tiny pure
	// function-2 tree every layout is L1-resident and the paths tie.
	const batch = 100000
	d, err := quest.Generate(quest.Config{Function: 2, Seed: 8, Perturbation: 0.2}, batch)
	if err != nil {
		b.Fatal(err)
	}
	tr := sprint.Build(d.Slice(0, 50000), tree.Options{Binary: true})
	m, err := flat.Compile(tr)
	if err != nil {
		b.Fatal(err)
	}
	pool := predict.NewPool(0)
	defer pool.Close()
	eng := predict.NewEngine(pool, m)
	out := make([]int32, d.Len())

	report := func(b *testing.B) {
		b.ReportMetric(float64(batch)*float64(b.N)/b.Elapsed().Seconds(), "rows_per_sec")
	}
	b.Run("pointer-per-row", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for r := 0; r < d.Len(); r++ {
				out[r] = tr.ClassifyRow(d, r)
			}
		}
		report(b)
	})
	b.Run("flat-per-row", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for r := 0; r < d.Len(); r++ {
				out[r] = m.Predict(d, r)
			}
		}
		report(b)
	})
	b.Run("flat-batch-parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := eng.PredictBatch(d, out); err != nil {
				b.Fatal(err)
			}
		}
		report(b)
	})
}

// ---------------------------------------------------------------------------
// BENCH_build.json: the build-time artifact of the statistics-reuse layer.

// buildBenchRun is one measured build: modeled runtime, wire volume, and
// the reduction-encoding counters (zero in baseline runs).
type buildBenchRun struct {
	ModeledSec    float64 `json:"modeled_sec"`
	CommBytes     int64   `json:"comm_bytes"`
	AllreduceSec  float64 `json:"allreduce_sec"`
	TreeNodes     int     `json:"tree_nodes"`
	TreeDepth     int     `json:"tree_depth"`
	DenseFlushes  int64   `json:"dense_flushes"`
	SparseFlushes int64   `json:"sparse_flushes"`
	BytesSaved    int64   `json:"bytes_saved"`
}

// buildBenchConfig pairs the baseline (reuse disabled) and optimised
// (sibling subtraction + sparse encoding) runs of one configuration.
type buildBenchConfig struct {
	Name        string        `json:"name"`
	Formulation string        `json:"formulation"`
	Records     int           `json:"records"`
	Procs       int           `json:"procs"`
	Continuous  bool          `json:"continuous"`
	MaxDepth    int           `json:"max_depth,omitempty"`
	Baseline    buildBenchRun `json:"baseline"`
	Reuse       buildBenchRun `json:"reuse"`
	Speedup     float64       `json:"speedup_modeled"`
	CommRatio   float64       `json:"comm_bytes_ratio"`
}

// voteBenchPoint is one cell of the voted-split matrix: a (attrs, vote_k,
// max_depth) configuration of the synchronous formulation measured
// against the exact (vote_k = 0) build of the same data.
type voteBenchPoint struct {
	Attrs       int     `json:"attrs"`
	VoteK       int     `json:"vote_k"` // 0 = exact
	MaxDepth    int     `json:"max_depth"`
	Procs       int     `json:"procs"`
	ModeledSec  float64 `json:"modeled_sec"`
	CommMB      float64 `json:"comm_MB"`
	CommRatio   float64 `json:"comm_ratio_vs_exact"` // exact MB / this MB
	TreeNodes   int     `json:"tree_nodes"`
	TreeDepth   int     `json:"tree_depth"`
	TestAcc     float64 `json:"test_acc"`
	AccDeltaPP  float64 `json:"acc_delta_pp"` // voted − exact, percentage points
	Identical   bool    `json:"identical_to_exact"`
}

// buildBenchArtifact is the serialized BENCH_build.json: the full matrix
// plus the derived deep-STC communication split (the acceptance series:
// comm_bytes attributable to tree levels deeper than 8, computed as
// total − total(MaxDepth=8), baseline vs reuse) and the voted-split
// matrix with its deep-level acceptance ratio.
type buildBenchArtifact struct {
	Benchmark string             `json:"benchmark"`
	Configs   []buildBenchConfig `json:"configs"`
	DeepSTC   struct {
		BaselineDeepBytes int64   `json:"baseline_deep_bytes"`
		ReuseDeepBytes    int64   `json:"reuse_deep_bytes"`
		Ratio             float64 `json:"ratio"`
	} `json:"deep_stc_depth_ge8"`
	Vote     []voteBenchPoint `json:"vote"`
	VoteDeep struct {
		ExactDeepMB   float64 `json:"exact_deep_MB"`
		VotedK8DeepMB float64 `json:"voted_k8_deep_MB"`
		Ratio         float64 `json:"ratio"`
	} `json:"vote_deep_attrs256_depth_gt6"`
}

func summarizeBuild(res experiments.Result) buildBenchRun {
	run := buildBenchRun{
		ModeledSec:   res.ModeledSeconds,
		CommBytes:    res.Traffic.Bytes,
		AllreduceSec: res.Breakdown.Coll(mp.CollAllreduce).CommTime,
		TreeNodes:    res.Tree.Nodes,
		TreeDepth:    res.Tree.MaxDepth,
	}
	for _, e := range res.Encoding {
		run.DenseFlushes += e.DenseFlushes
		run.SparseFlushes += e.SparseFlushes
		run.BytesSaved += e.BytesSaved()
	}
	return run
}

// BenchmarkBuildMatrix runs the Fig6/Fig7/Table2-representative and
// deep-tree (Fig8/Fig9-style, per-node-discretized) build configurations
// twice each — statistics reuse off and on — and writes the paired modeled
// times, communication volumes and encoding counters to BENCH_build.json
// (override the path with BENCH_BUILD_JSON). The acceptance series are the
// per-config modeled speedups (deep continuous builds) and the deep-STC
// comm_bytes ratio at depth ≥ 8.
func BenchmarkBuildMatrix(b *testing.B) {
	type cfg struct {
		name       string
		form       experiments.Formulation
		records    int
		procs      int
		continuous bool
		maxDepth   int
		ratio      float64
	}
	cfgs := []cfg{
		{name: "fig6-sync", form: experiments.Sync, records: fig6Small, procs: 8},
		{name: "fig6-partitioned", form: experiments.Partitioned, records: fig6Small, procs: 8},
		{name: "fig6-hybrid", form: experiments.Hybrid, records: fig6Small, procs: 8},
		{name: "fig7-hybrid-ratio1", form: experiments.Hybrid, records: fig7N, procs: 8, ratio: 1},
		{name: "table2-sync-large", form: experiments.Sync, records: fig6Large, procs: 8},
		{name: "deep-sync-continuous", form: experiments.Sync, records: fig8N, procs: 8, continuous: true},
		{name: "deep-sync-continuous-d8", form: experiments.Sync, records: fig8N, procs: 8, continuous: true, maxDepth: 8},
		{name: "deep-hybrid-continuous", form: experiments.Hybrid, records: fig8N, procs: 8, continuous: true},
	}
	art := buildBenchArtifact{Benchmark: "BenchmarkBuildMatrix"}
	for _, c := range cfgs {
		spec := experiments.Spec{
			Formulation: c.form,
			Records:     c.records,
			Procs:       c.procs,
			Continuous:  c.continuous,
			Options:     core.Options{SplitRatio: c.ratio, Tree: tree.Options{MaxDepth: c.maxDepth}},
		}
		out := buildBenchConfig{
			Name: c.name, Formulation: string(c.form), Records: c.records,
			Procs: c.procs, Continuous: c.continuous, MaxDepth: c.maxDepth,
		}
		for _, reuse := range []bool{false, true} {
			variant := "baseline"
			s := spec
			if reuse {
				variant = "reuse"
				s.Options.Tree.Reuse = kernel.ReuseAll()
			}
			b.Run(c.name+"/"+variant, func(b *testing.B) {
				var res experiments.Result
				for i := 0; i < b.N; i++ {
					res = experiments.Run(s)
				}
				run := summarizeBuild(res)
				b.ReportMetric(run.ModeledSec, "modeled_sec")
				b.ReportMetric(float64(run.CommBytes), "comm_bytes")
				b.ReportMetric(run.AllreduceSec, "allreduce_sec")
				if reuse {
					out.Reuse = run
				} else {
					out.Baseline = run
				}
			})
		}
		if out.Reuse.ModeledSec > 0 {
			out.Speedup = out.Baseline.ModeledSec / out.Reuse.ModeledSec
		}
		if out.Reuse.CommBytes > 0 {
			out.CommRatio = float64(out.Baseline.CommBytes) / float64(out.Reuse.CommBytes)
		}
		art.Configs = append(art.Configs, out)
	}
	// Deep-STC split: the communication of the levels deeper than 8 is the
	// unbounded sync build's volume minus the MaxDepth=8 build's volume.
	var full, d8 *buildBenchConfig
	for i := range art.Configs {
		switch art.Configs[i].Name {
		case "deep-sync-continuous":
			full = &art.Configs[i]
		case "deep-sync-continuous-d8":
			d8 = &art.Configs[i]
		}
	}
	if full != nil && d8 != nil {
		art.DeepSTC.BaselineDeepBytes = full.Baseline.CommBytes - d8.Baseline.CommBytes
		art.DeepSTC.ReuseDeepBytes = full.Reuse.CommBytes - d8.Reuse.CommBytes
		if art.DeepSTC.ReuseDeepBytes > 0 {
			art.DeepSTC.Ratio = float64(art.DeepSTC.BaselineDeepBytes) / float64(art.DeepSTC.ReuseDeepBytes)
		}
	}
	// Voted split selection: the attribute-parallel matrix. Each cell
	// sweeps vote_k over the same wide dataset and compares against the
	// exact build; the invariant gated here (and by CI's jq check) is that
	// an active vote never moves more bytes than the exact reduction at
	// any depth, and at 256 attributes / k=8 / depth 12 the deep-level
	// volume drops by at least the acceptance factor while holdout
	// accuracy holds within half a point. The record count gives each
	// rank 2000 rows — nominations need statistical mass, and a tight
	// depth budget (the depth-6 column) is the published counter-case: a
	// missed election can only be recovered by splitting deeper, so
	// voting pairs with a realistic depth budget (see EXPERIMENTS.md).
	const voteN = 16000
	voteKs := []int{1, 2, 8}
	voteMB := map[[2]int]map[int]float64{} // (attrs, depth) → k → MB
	for _, vc := range []struct{ attrs, depth int }{{64, 6}, {64, 12}, {256, 6}, {256, 12}} {
		base := experiments.Spec{
			Formulation: experiments.Sync, Records: voteN, Procs: 8, Continuous: true,
			Options: core.Options{Tree: tree.Options{MaxDepth: vc.depth}},
		}
		var pts []experiments.VotePoint
		b.Run(fmt.Sprintf("vote/attrs=%d/depth=%d", vc.attrs, vc.depth), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pts = experiments.VoteSweep(base, []int{vc.attrs}, voteKs, 4000)
			}
			exact := pts[0]
			byK := map[int]float64{}
			for _, pt := range pts {
				byK[pt.K] = pt.MB
				if pt.K > 0 && pt.MB > exact.MB {
					b.Errorf("vote_k=%d moved %.2f MB, above the exact build's %.2f MB", pt.K, pt.MB, exact.MB)
				}
			}
			voteMB[[2]int{vc.attrs, vc.depth}] = byK
			k8 := pts[len(pts)-1]
			b.ReportMetric(exact.MB/k8.MB, "comm_ratio_k8")
			b.ReportMetric((k8.TestAcc-exact.TestAcc)*100, "acc_delta_pp_k8")
			b.ReportMetric(k8.MB, "comm_MB_k8")
		})
		exact := experiments.VotePoint{}
		for _, pt := range pts {
			if pt.K == 0 {
				exact = pt
			}
			vp := voteBenchPoint{
				Attrs: pt.Attrs, VoteK: pt.K, MaxDepth: vc.depth, Procs: pt.Procs,
				ModeledSec: pt.Seconds, CommMB: pt.MB, TreeNodes: pt.Nodes,
				TreeDepth: pt.Depth, TestAcc: pt.TestAcc, Identical: pt.Identical,
			}
			if pt.K > 0 && pt.MB > 0 {
				vp.CommRatio = exact.MB / pt.MB
				vp.AccDeltaPP = (pt.TestAcc - exact.TestAcc) * 100
			}
			art.Vote = append(art.Vote, vp)
		}
	}
	// Deep-level split at 256 attributes: bytes attributable to levels
	// deeper than 6 (depth-12 volume minus depth-6 volume), exact vs k=8.
	if d6, d12 := voteMB[[2]int{256, 6}], voteMB[[2]int{256, 12}]; d6 != nil && d12 != nil {
		art.VoteDeep.ExactDeepMB = d12[0] - d6[0]
		art.VoteDeep.VotedK8DeepMB = d12[8] - d6[8]
		if art.VoteDeep.VotedK8DeepMB > 0 {
			art.VoteDeep.Ratio = art.VoteDeep.ExactDeepMB / art.VoteDeep.VotedK8DeepMB
		}
	}
	path := os.Getenv("BENCH_BUILD_JSON")
	if path == "" {
		path = "BENCH_build.json"
	}
	buf, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		b.Fatalf("marshal artifact: %v", err)
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		b.Logf("could not write %s: %v", path, err)
	}
}

// BenchmarkVoteHotPath measures one nomination + election round of voted
// split selection at the wide-schema operating point (256 attributes,
// k=8, 2k candidates) — the per-chunk hot path of every voted builder.
// TestVoteHotPathAllocFree below pins it to zero allocations.
func BenchmarkVoteHotPath(b *testing.B) {
	const numAttrs, k, elect = 256, 8, 16
	gains := kernel.GetFloat64(numAttrs)
	for i := range gains {
		gains[i] = float64((i*37)%101) / 100
	}
	ballot := kernel.GetInt32(k)
	elected := kernel.GetInt32(elect)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kernel.VoteTopK(gains, k, 0, ballot)
		kernel.ElectCandidates(ballot, numAttrs, elect, elected)
	}
	b.StopTimer()
	kernel.PutInt32(elected)
	kernel.PutInt32(ballot)
	kernel.PutFloat64(gains)
}

// TestVoteHotPathAllocFree asserts the benchmark's claim: the voted
// builders' per-chunk nominate+elect round allocates nothing.
func TestVoteHotPathAllocFree(t *testing.T) {
	const numAttrs, k, elect = 256, 8, 16
	gains := kernel.GetFloat64(numAttrs)
	for i := range gains {
		gains[i] = float64((i*37)%101) / 100
	}
	ballot := kernel.GetInt32(k)
	elected := kernel.GetInt32(elect)
	if avg := testing.AllocsPerRun(200, func() {
		kernel.VoteTopK(gains, k, 0, ballot)
		kernel.ElectCandidates(ballot, numAttrs, elect, elected)
	}); avg != 0 {
		t.Fatalf("vote hot path allocates %.1f objects per round; want 0", avg)
	}
	kernel.PutInt32(elected)
	kernel.PutInt32(ballot)
	kernel.PutFloat64(gains)
}

// BenchmarkShuffle measures the record-movement primitive: a full
// balanced redistribution of the local datasets (the hybrid's moving +
// load-balancing phase).
func BenchmarkShuffle(b *testing.B) {
	d, err := quest.Generate(quest.Config{Function: 2, Seed: 4}, 20000)
	if err != nil {
		b.Fatal(err)
	}
	const p = 8
	blocks := d.BlockPartition(p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := mp.NewWorld(p, mp.SP2())
		w.Run(func(c *mp.Comm) {
			local := blocks[c.Rank()]
			buf := dataset.EncodeAll(nil, local)
			send := make([][]byte, p)
			rb := local.Schema.RecordBytes()
			per := len(buf) / rb / p
			for r := 0; r < p; r++ {
				lo := r * per * rb
				hi := (r + 1) * per * rb
				if r == p-1 {
					hi = len(buf)
				}
				send[r] = buf[lo:hi]
			}
			recv := mp.Alltoallv(c, 1, send)
			out := dataset.New(local.Schema, local.Len())
			for _, blk := range recv {
				if err := dataset.Decode(out, local.Schema, blk); err != nil {
					panic(err)
				}
			}
		})
	}
}
