// Differential identity tests for the topology/collective-algorithm
// refactor of internal/mp. The default configuration — implicit hypercube
// topology, default algorithm per collective, zero per-hop latency — must
// be unobservable: every formulation grows a bit-identical tree with a
// bit-identical modeled cost breakdown whether the world was left alone
// or explicitly configured with the defaults. Non-default algorithms and
// hop-priced topologies may change modeled time, but never the tree.
package partree_test

import (
	"fmt"
	"reflect"
	"testing"

	"partree/internal/core"
	"partree/internal/dataset"
	"partree/internal/kernel"
	"partree/internal/mp"
	"partree/internal/scalparc"
	"partree/internal/tree"
)

// netConfig is one network configuration applied to a fresh world before
// a build; the zero value leaves the world untouched.
type netConfig struct {
	topology string
	coll     string
	hopLat   float64
}

func (nc netConfig) apply(w *mp.World, p int) {
	if nc.topology != "" {
		topo, err := mp.NewTopology(nc.topology, p)
		if err != nil {
			panic(err)
		}
		w.SetTopology(topo)
	}
	if nc.coll != "" {
		cfg, err := mp.ParseCollSpec(nc.coll)
		if err != nil {
			panic(err)
		}
		w.SetCollConfig(cfg)
	}
}

func (nc netConfig) machine() mp.Machine {
	m := mp.SP2()
	if nc.hopLat != 0 {
		m = m.WithHopLatency(nc.hopLat)
	}
	return m
}

// runRanksNet is runRanks with an explicit world size and network config.
func runRanksNet(t *testing.T, d *dataset.Dataset, p int, nc netConfig, f func(c *mp.Comm, local *dataset.Dataset) *tree.Tree) (*tree.Tree, *mp.World) {
	t.Helper()
	w := mp.NewWorld(p, nc.machine())
	nc.apply(w, p)
	blocks := d.BlockPartition(p)
	trees := make([]*tree.Tree, p)
	w.Run(func(c *mp.Comm) {
		trees[c.Rank()] = f(c, blocks[c.Rank()])
	})
	for r := 1; r < p; r++ {
		if diff := tree.Diff(trees[0], trees[r]); diff != "" {
			t.Fatalf("rank %d tree differs from rank 0: %s", r, diff)
		}
	}
	return trees[0], w
}

// TestDefaultNetworkConfigIdentity: for every formulation, a world that
// explicitly sets the hypercube topology and the default collective
// algorithms is bit-identical — tree, payload counters and modeled
// breakdown — to an untouched world. This is the acceptance gate for the
// topology refactor: the default path must not have moved.
func TestDefaultNetworkConfigIdentity(t *testing.T) {
	explicit := netConfig{topology: "hypercube", coll: "default"}
	for _, discrete := range []bool{true, false} {
		d := genKernelData(t, discrete)
		for _, b := range kernelBuilders(discrete) {
			t.Run(fmt.Sprintf("discrete=%v/%s", discrete, b.name), func(t *testing.T) {
				wantTree, wantW := b.build(t, d) // untouched worlds inside
				gotTree, gotW := buildWithNet(t, d, b.name, discrete, explicit)
				if gotTree == nil {
					t.Skip("single-process builder: no world to configure")
				}
				if diff := tree.Diff(wantTree, gotTree); diff != "" {
					t.Fatalf("explicit default config changed the tree: %s", diff)
				}
				if wantW == nil || gotW == nil {
					return
				}
				if wantW.MaxClock() != gotW.MaxClock() {
					t.Fatalf("explicit default config changed the modeled clock: %v vs %v",
						wantW.MaxClock(), gotW.MaxClock())
				}
				if !reflect.DeepEqual(wantW.Traffic(), gotW.Traffic()) {
					t.Fatalf("explicit default config changed traffic:\nimplicit: %+v\nexplicit: %+v",
						wantW.Traffic(), gotW.Traffic())
				}
				if !reflect.DeepEqual(wantW.Breakdown(), gotW.Breakdown()) {
					t.Fatalf("explicit default config changed the modeled breakdown")
				}
				if !reflect.DeepEqual(wantW.EncodingByPhase(), gotW.EncodingByPhase()) {
					t.Fatalf("explicit default config changed encoding stats")
				}
			})
		}
	}
}

// buildWithNet rebuilds kernelBuilders' multi-rank formulations with a
// network config; returns nils for the single-process builders.
func buildWithNet(t *testing.T, d *dataset.Dataset, name string, discrete bool, nc netConfig) (*tree.Tree, *mp.World) {
	t.Helper()
	coreOpts := core.Options{Tree: tree.Options{Binary: true}, SyncEveryNodes: 8}
	if !discrete {
		coreOpts.MicroBins = 32
		coreOpts.NodeBins = 6
	}
	serialOpts := tree.Options{Binary: true}
	const p = 3
	switch name {
	case "sync":
		return runRanksNet(t, d, p, nc, func(c *mp.Comm, local *dataset.Dataset) *tree.Tree {
			return core.BuildSync(c, local, coreOpts)
		})
	case "partitioned":
		return runRanksNet(t, d, p, nc, func(c *mp.Comm, local *dataset.Dataset) *tree.Tree {
			return core.BuildPartitioned(c, local, coreOpts)
		})
	case "hybrid":
		return runRanksNet(t, d, p, nc, func(c *mp.Comm, local *dataset.Dataset) *tree.Tree {
			return core.BuildHybrid(c, local, coreOpts)
		})
	case "scalparc":
		return runRanksNet(t, d, p, nc, func(c *mp.Comm, local *dataset.Dataset) *tree.Tree {
			return scalparc.Build(c, local, scalparc.Options{Tree: serialOpts, Mode: scalparc.DistributedHash}).Tree
		})
	default:
		return nil, nil
	}
}

// TestNonPowerOfTwoDifferential: every multi-rank formulation at
// P ∈ {3, 5, 6, 12} grows the same tree as its serial reference, and the
// per-phase breakdown stays internally consistent with the raw traffic
// counters (sum over cells = sum over ranks). The non-power-of-two
// collective paths — binomial reduce+bcast, uneven ring chunks — must be
// exactly as correct as the recursive-doubling fast path.
func TestNonPowerOfTwoDifferential(t *testing.T) {
	d := genKernelData(t, true)
	coreOpts := core.Options{Tree: tree.Options{Binary: true}, SyncEveryNodes: 8}
	serialRef := tree.BuildBFS(d, coreOpts.SerialOptions(d))
	builders := []struct {
		name  string
		build func(c *mp.Comm, local *dataset.Dataset) *tree.Tree
	}{
		{"sync", func(c *mp.Comm, local *dataset.Dataset) *tree.Tree {
			return core.BuildSync(c, local, coreOpts)
		}},
		{"partitioned", func(c *mp.Comm, local *dataset.Dataset) *tree.Tree {
			return core.BuildPartitioned(c, local, coreOpts)
		}},
		{"hybrid", func(c *mp.Comm, local *dataset.Dataset) *tree.Tree {
			return core.BuildHybrid(c, local, coreOpts)
		}},
	}
	for _, p := range []int{3, 5, 6, 12} {
		for _, b := range builders {
			t.Run(fmt.Sprintf("p=%d/%s", p, b.name), func(t *testing.T) {
				got, w := runRanksNet(t, d, p, netConfig{}, b.build)
				if diff := tree.Diff(serialRef, got); diff != "" {
					t.Fatalf("P=%d tree differs from serial reference: %s", p, diff)
				}
				checkBreakdownConsistent(t, w)
			})
		}
		// ScalParC's distributed hash tables give identical trees across
		// ranks (checked inside runRanksNet) but take their own split
		// path; compare against its own P=2 run instead of the BFS serial.
		t.Run(fmt.Sprintf("p=%d/scalparc", p), func(t *testing.T) {
			ref, _ := runRanksNet(t, d, 2, netConfig{}, func(c *mp.Comm, local *dataset.Dataset) *tree.Tree {
				return scalparc.Build(c, local, scalparc.Options{Tree: tree.Options{Binary: true}, Mode: scalparc.DistributedHash}).Tree
			})
			got, w := runRanksNet(t, d, p, netConfig{}, func(c *mp.Comm, local *dataset.Dataset) *tree.Tree {
				return scalparc.Build(c, local, scalparc.Options{Tree: tree.Options{Binary: true}, Mode: scalparc.DistributedHash}).Tree
			})
			if diff := tree.Diff(ref, got); diff != "" {
				t.Fatalf("P=%d scalparc tree differs from P=2 reference: %s", p, diff)
			}
			checkBreakdownConsistent(t, w)
		})
	}
}

func checkBreakdownConsistent(t *testing.T, w *mp.World) {
	t.Helper()
	tr := w.Traffic()
	tot := w.Breakdown().Total()
	if tot.Msgs != tr.Msgs || tot.Bytes != tr.Bytes {
		t.Fatalf("breakdown total %+v inconsistent with traffic %+v", tot, tr)
	}
	if diff := tot.CommTime - tr.CommTime; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("breakdown comm time %v != traffic %v", tot.CommTime, tr.CommTime)
	}
}

// TestTreeInvariantUnderNetworkConfig: changing the collective algorithm,
// the topology, or the per-hop latency may change modeled time but must
// never change the built tree — data and cost are strictly separated.
// Exercised with the sparse-reuse path enabled so the adaptive encoding
// runs under every allreduce algorithm.
func TestTreeInvariantUnderNetworkConfig(t *testing.T) {
	d := genKernelData(t, true)
	coreOpts := core.Options{Tree: tree.Options{Binary: true}, SyncEveryNodes: 8}
	coreOpts.Tree.Reuse = kernel.ReuseAll()
	build := func(c *mp.Comm, local *dataset.Dataset) *tree.Tree {
		return core.BuildSync(c, local, coreOpts)
	}
	const p = 6
	want, _ := runRanksNet(t, d, p, netConfig{}, build)
	for _, nc := range []netConfig{
		{coll: "ring"},
		{coll: "rhd"}, // falls back to red+bcast at p=6
		{coll: "auto"},
		{coll: "allreduce=ring,bcast=scatter-ag,allgather=gather+bcast"},
		{topology: "ring", hopLat: 5e-6},
		{topology: "torus", coll: "ring", hopLat: 5e-6},
		{topology: "fattree", coll: "auto", hopLat: 5e-6},
	} {
		got, w := runRanksNet(t, d, p, nc, build)
		if diff := tree.Diff(want, got); diff != "" {
			t.Fatalf("config %+v changed the tree: %s", nc, diff)
		}
		checkBreakdownConsistent(t, w)
	}
	// The hybrid's split trigger is allowed to depend on the configured
	// algorithm's cost model, but its tree must still match the serial
	// reference under the default trigger semantics.
	serialRef := tree.BuildBFS(d, core.Options{Tree: tree.Options{Binary: true}, SyncEveryNodes: 8}.SerialOptions(d))
	hybridGot, _ := runRanksNet(t, d, p, netConfig{coll: "ring"}, func(c *mp.Comm, local *dataset.Dataset) *tree.Tree {
		return core.BuildHybrid(c, local, core.Options{Tree: tree.Options{Binary: true}, SyncEveryNodes: 8})
	})
	if diff := tree.Diff(serialRef, hybridGot); diff != "" {
		t.Fatalf("hybrid under ring allreduce differs from serial reference: %s", diff)
	}
}
