// BENCH_ooc.json: the out-of-core build artifact. BenchmarkOOCBuild
// trains the synchronous formulation twice per dataset size — once from
// the in-RAM Dataset, once streamed from the on-disk column store — and
// records wall rows/sec, the modeled clock (which must not move between
// backends), and the modeled disk volume the out-of-core run charges.
//
// The committed artifact is generated at the paper-scale sizes:
//
//	BENCH_OOC_ROWS=1000000,10000000 go test -run '^$' -bench OOCBuild -benchtime 1x .
//
// The default size is small enough for the CI benchmark smoke; override
// the output path with BENCH_OOC_JSON.
package partree_test

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"partree/internal/core"
	"partree/internal/dataset"
	"partree/internal/discretize"
	"partree/internal/mp"
	"partree/internal/quest"
	"partree/internal/tree"
)

// oocBenchRun is one measured build from one backend.
type oocBenchRun struct {
	WallSec    float64 `json:"wall_sec"`
	RowsPerSec float64 `json:"rows_per_sec"`
	ModeledSec float64 `json:"modeled_sec"`
	CommBytes  int64   `json:"comm_bytes"`
	DiskBytes  int64   `json:"modeled_disk_bytes"`
	TreeNodes  int     `json:"tree_nodes"`
}

// oocBenchConfig pairs the in-RAM and out-of-core runs of one size. The
// acceptance invariants: equal tree_nodes and modeled_sec across the
// pair, zero disk bytes in RAM, positive disk bytes out-of-core.
type oocBenchConfig struct {
	Rows           int         `json:"rows"`
	ChunkRows      int         `json:"chunk_rows"`
	Procs          int         `json:"procs"`
	StoreEncodedMB float64     `json:"store_encoded_mb"`
	StoreWriteSec  float64     `json:"store_write_sec"`
	InRAM          oocBenchRun `json:"in_ram"`
	OutOfCore      oocBenchRun `json:"out_of_core"`
	WallRatio      float64     `json:"ooc_vs_ram_wall_ratio"`
}

type oocBenchArtifact struct {
	Benchmark string           `json:"benchmark"`
	Configs   []oocBenchConfig `json:"configs"`
}

// oocBenchRows reads the dataset sizes from BENCH_OOC_ROWS (comma
// separated), defaulting to one smoke-scale size.
func oocBenchRows(b *testing.B) []int {
	env := os.Getenv("BENCH_OOC_ROWS")
	if env == "" {
		return []int{200000}
	}
	var rows []int
	for _, f := range strings.Split(env, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n <= 0 {
			b.Fatalf("BENCH_OOC_ROWS: bad size %q", f)
		}
		rows = append(rows, n)
	}
	return rows
}

// BenchmarkOOCBuild measures chunked-store training against in-RAM
// training on the same rows (paper-discretized Function 2, synchronous
// formulation) and writes BENCH_ooc.json. The two backends must grow the
// same tree on the same modeled clock; only wall time and the separately
// reported disk class may differ.
func BenchmarkOOCBuild(b *testing.B) {
	const procs = 4
	opts := core.Options{Tree: tree.Options{Binary: true}, SyncEveryNodes: 8}
	art := oocBenchArtifact{Benchmark: "BenchmarkOOCBuild"}
	for _, rows := range oocBenchRows(b) {
		d, err := quest.GenerateBlock(quest.Config{Function: 2, Seed: 1998}, 0, rows)
		if err != nil {
			b.Fatalf("generate: %v", err)
		}
		d = discretize.UniformPaper(d, quest.PaperBins(), quest.Ranges())

		dir := filepath.Join(b.TempDir(), "bench.store")
		t0 := time.Now()
		if err := dataset.WriteStore(dir, d.Chunked(dataset.DefaultChunkRows), dataset.DefaultChunkRows); err != nil {
			b.Fatalf("write store: %v", err)
		}
		writeSec := time.Since(t0).Seconds()
		st, err := dataset.OpenStore(dir)
		if err != nil {
			b.Fatalf("open store: %v", err)
		}
		var encoded int64
		for _, f := range []string{"class.col", "rid.col"} {
			if fi, err := os.Stat(filepath.Join(dir, f)); err == nil {
				encoded += fi.Size()
			}
		}
		for a := 0; a < len(d.Schema.Attrs); a++ {
			if fi, err := os.Stat(filepath.Join(dir, fmt.Sprintf("attr_%02d.col", a))); err == nil {
				encoded += fi.Size()
			}
		}
		out := oocBenchConfig{
			Rows: rows, ChunkRows: dataset.DefaultChunkRows, Procs: procs,
			StoreEncodedMB: float64(encoded) / 1e6, StoreWriteSec: writeSec,
		}

		var ramTree, oocTree *tree.Tree
		run := func(name string, build func() (*tree.Tree, *mp.World)) oocBenchRun {
			var r oocBenchRun
			b.Run(fmt.Sprintf("rows=%d/%s", rows, name), func(b *testing.B) {
				var tr *tree.Tree
				var w *mp.World
				start := time.Now()
				for i := 0; i < b.N; i++ {
					tr, w = build()
				}
				wall := time.Since(start).Seconds() / float64(b.N)
				stats := tr.Stats()
				tf := w.Traffic()
				r = oocBenchRun{
					WallSec:    wall,
					RowsPerSec: float64(rows) / wall,
					ModeledSec: w.MaxClock(),
					CommBytes:  tf.Bytes,
					DiskBytes:  tf.DiskBytes,
					TreeNodes:  stats.Nodes,
				}
				b.ReportMetric(r.RowsPerSec, "rows/sec")
				b.ReportMetric(r.ModeledSec, "modeled_sec")
				b.ReportMetric(float64(r.DiskBytes), "disk_bytes")
				if name == "in-ram" {
					ramTree = tr
				} else {
					oocTree = tr
				}
			})
			return r
		}

		out.InRAM = run("in-ram", func() (*tree.Tree, *mp.World) {
			w := mp.NewWorld(procs, mp.SP2())
			blocks := d.BlockPartition(procs)
			trees := make([]*tree.Tree, procs)
			w.Run(func(c *mp.Comm) {
				trees[c.Rank()] = core.BuildSync(c, blocks[c.Rank()], opts)
			})
			return trees[0], w
		})
		out.OutOfCore = run("chunked-store", func() (*tree.Tree, *mp.World) {
			w := mp.NewWorld(procs, mp.SP2())
			trees := make([]*tree.Tree, procs)
			errs := make([]error, procs)
			w.Run(func(c *mp.Comm) {
				lo, hi := dataset.BlockBounds(st.Len(), procs, c.Rank())
				trees[c.Rank()], errs[c.Rank()] = core.BuildSyncOOC(c, dataset.SectionOf(st, lo, hi), opts)
			})
			for r, err := range errs {
				if err != nil {
					b.Fatalf("rank %d: %v", r, err)
				}
			}
			return trees[0], w
		})

		// The benchmark doubles as a coarse identity gate at sizes the unit
		// tests never reach.
		if diff := tree.Diff(ramTree, oocTree); diff != "" {
			b.Fatalf("rows=%d: backends grew different trees: %s", rows, diff)
		}
		if out.InRAM.ModeledSec != out.OutOfCore.ModeledSec {
			b.Fatalf("rows=%d: modeled clock moved between backends: %g vs %g",
				rows, out.InRAM.ModeledSec, out.OutOfCore.ModeledSec)
		}
		if out.InRAM.DiskBytes != 0 || out.OutOfCore.DiskBytes <= 0 {
			b.Fatalf("rows=%d: disk accounting wrong: ram %d, ooc %d",
				rows, out.InRAM.DiskBytes, out.OutOfCore.DiskBytes)
		}
		if out.InRAM.WallSec > 0 {
			out.WallRatio = out.OutOfCore.WallSec / out.InRAM.WallSec
		}
		st.Close()
		art.Configs = append(art.Configs, out)
	}

	path := os.Getenv("BENCH_OOC_JSON")
	if path == "" {
		path = "BENCH_ooc.json"
	}
	buf, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		b.Fatalf("marshal artifact: %v", err)
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		b.Logf("could not write %s: %v", path, err)
	}
}
